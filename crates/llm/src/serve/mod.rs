//! Fleet-scale multi-tenant serving.
//!
//! This module is the serving layer the paper's §8 deployment sketch
//! implies but never details: N tenants sharing M xPU-backed confidential
//! systems behind sharded PCIe-SC instances. It wires together
//!
//! * [`arrival`] — deterministic seeded open-loop Poisson arrivals;
//! * [`limiter`] — per-tenant token-bucket admission with typed shed
//!   reasons (requests are never silently dropped);
//! * [`scheduler`] — a continuous-batching scheduler that admits new
//!   work at pump-round quiesce points with fair round-robin seats;
//! * [`FleetServer`] — the event loop joining them over `shards`
//!   parallel service lanes, accounting every picosecond into the
//!   [`Telemetry`] hub (waits as per-tenant idle, service as per-tenant
//!   hop spans) so the trace digest covers the whole fleet run.
//!
//! Everything is a pure function of [`FleetConfig`]: same config, same
//! digest, bit-identical [`FleetSnapshot`] — including across a
//! mid-flight [`FleetServer::snapshot`]/[`FleetServer::resume`] pair.

pub mod arrival;
pub mod limiter;
pub mod scheduler;

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use ccai_core::perf::{CostBreakdown, OptimizationConfig, PerfModel};
use ccai_pcie::ShardRouter;
use ccai_sim::snapshot::{Decoder, Encoder, SnapshotError};
use ccai_sim::telemetry::Severity;
use ccai_sim::{Hop, SimDuration, SimTime, Summary, Telemetry, TelemetrySnapshot};
use ccai_xpu::XpuSpec;

use crate::catalog::LlmSpec;
use crate::chaos::{ChaosEvent, ChaosPlan};
use crate::workload::InferenceWorkload;

pub use arrival::{ArrivalProcess, Request};
pub use limiter::{RateLimiter, ShedReason};
pub use scheduler::ContinuousBatcher;

/// Telemetry ring-buffer capacity for fleet runs. The digest covers every
/// event regardless; the ring only bounds replayable history.
const EVENT_CAPACITY: usize = 4096;

/// Schema tag for [`FleetSnapshot::to_json`].
pub const FLEET_SCHEMA: &str = "ccai.fleet.v1";

/// Deterministic bring-up latency a hot-plugged blade pays before its
/// first batch, modeling the attested bring-up chain (secure boot →
/// attest → key release → policy install → filter arming) a replacement
/// must clear before it may serve.
pub const BRINGUP_LATENCY: SimDuration = SimDuration::from_micros(250);

/// One tenant's serving contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// Telemetry tag (matches the SC's `u32` tenant tag space).
    pub tag: u32,
    /// Mean inter-arrival gap of the tenant's Poisson source.
    pub mean_interarrival: SimDuration,
    /// Token-bucket burst capacity (requests).
    pub burst: u64,
    /// Token-bucket refill rate (requests per second).
    pub rate_per_sec: u64,
}

impl TenantSpec {
    /// Convenience constructor.
    pub fn new(tag: u32, mean_interarrival: SimDuration, burst: u64, rate_per_sec: u64) -> Self {
        TenantSpec { tag, mean_interarrival, burst, rate_per_sec }
    }
}

/// Full fleet configuration; the run is a pure function of this value.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Arrival-process seed.
    pub seed: u64,
    /// Number of parallel service lanes (sharded PCIe-SC instances).
    pub shards: u32,
    /// Largest batch a shard admits at a quiesce point.
    pub max_batch: usize,
    /// Per-tenant admission backlog before tail-dropping with a typed
    /// shed.
    pub admission_backlog: usize,
    /// Whether token-bucket rate limiting is active.
    pub rate_limiting: bool,
    /// Model every shard serves (golden image).
    pub model: LlmSpec,
    /// Device behind every shard.
    pub device: XpuSpec,
    /// The tenant population.
    pub tenants: Vec<TenantSpec>,
}

impl FleetConfig {
    /// The acceptance-scale default: eight tenants across four shards,
    /// all with the same contract, serving OPT-1.3b on A100s.
    pub fn standard(seed: u64) -> FleetConfig {
        let tenants = (0..8)
            .map(|i| TenantSpec::new(100 + i, SimDuration::from_millis(40), 32, 64))
            .collect();
        FleetConfig {
            seed,
            shards: 4,
            max_batch: 32,
            admission_backlog: 64,
            rate_limiting: true,
            model: LlmSpec::opt_1_3b(),
            device: XpuSpec::a100(),
            tenants,
        }
    }

    /// Structural fingerprint folded into snapshots so a resume against a
    /// different config is rejected instead of silently diverging.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn fold(mut h: u64, bytes: &[u8]) -> u64 {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
            h
        }
        let mut h = fold(OFFSET, &self.seed.to_le_bytes());
        h = fold(h, &self.shards.to_le_bytes());
        h = fold(h, &(self.max_batch as u64).to_le_bytes());
        h = fold(h, &(self.admission_backlog as u64).to_le_bytes());
        h = fold(h, &[u8::from(self.rate_limiting)]);
        h = fold(h, self.model.name().as_bytes());
        h = fold(h, self.device.name().as_bytes());
        for t in &self.tenants {
            h = fold(h, &t.tag.to_le_bytes());
            h = fold(h, &t.mean_interarrival.as_picos().to_le_bytes());
            h = fold(h, &t.burst.to_le_bytes());
            h = fold(h, &t.rate_per_sec.to_le_bytes());
        }
        h
    }
}

/// One request currently being served by a shard. The wait and per-hop
/// service components are priced at dispatch and *recorded* at
/// completion, so a crash between the two can hand the raw request back
/// to the batcher with nothing accounted — exactly-once stats.
#[derive(Debug, Clone)]
struct InFlight {
    req: Request,
    wait: SimDuration,
    stage: SimDuration,
    crypt: SimDuration,
    filter: SimDuration,
    link: SimDuration,
    compute: SimDuration,
}

impl InFlight {
    fn service(&self) -> SimDuration {
        self.stage + self.crypt + self.filter + self.link + self.compute
    }

    fn encode(&self, enc: &mut Encoder) {
        self.req.encode(enc);
        enc.u64(self.wait.as_picos());
        enc.u64(self.stage.as_picos());
        enc.u64(self.crypt.as_picos());
        enc.u64(self.filter.as_picos());
        enc.u64(self.link.as_picos());
        enc.u64(self.compute.as_picos());
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<InFlight, SnapshotError> {
        Ok(InFlight {
            req: Request::decode(dec)?,
            wait: SimDuration::from_picos(dec.u64()?),
            stage: SimDuration::from_picos(dec.u64()?),
            crypt: SimDuration::from_picos(dec.u64()?),
            filter: SimDuration::from_picos(dec.u64()?),
            link: SimDuration::from_picos(dec.u64()?),
            compute: SimDuration::from_picos(dec.u64()?),
        })
    }
}

/// One service lane (a sharded PCIe-SC fronting one xPU system).
#[derive(Debug)]
struct ShardState {
    /// Stable replica id — survives removals, never reused for a
    /// hot-plugged blade, and is the name chaos events target.
    id: u32,
    busy_until: SimTime,
    rounds: u64,
    /// The batch currently in service (empty when idle).
    in_flight: Vec<InFlight>,
    /// A draining replica finishes its current round but is never
    /// offered another batch; it retires once idle.
    draining: bool,
}

impl ShardState {
    fn idle_at(&self, now: SimTime) -> bool {
        self.in_flight.is_empty() && self.busy_until <= now
    }
}

/// Per-tenant serving counters and latency samples.
#[derive(Debug, Default)]
struct TenantStats {
    generated: u64,
    admitted: u64,
    served: u64,
    shed_rate_limited: u64,
    shed_queue_full: u64,
    shed_quarantined: u64,
    queue_delay_us: Vec<f64>,
    e2e_us: Vec<f64>,
}

impl TenantStats {
    fn encode(&self, enc: &mut Encoder) {
        enc.u64(self.generated);
        enc.u64(self.admitted);
        enc.u64(self.served);
        enc.u64(self.shed_rate_limited);
        enc.u64(self.shed_queue_full);
        enc.u64(self.shed_quarantined);
        enc.u64(self.queue_delay_us.len() as u64);
        for &s in &self.queue_delay_us {
            enc.f64(s);
        }
        enc.u64(self.e2e_us.len() as u64);
        for &s in &self.e2e_us {
            enc.f64(s);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<TenantStats, SnapshotError> {
        let generated = dec.u64()?;
        let admitted = dec.u64()?;
        let served = dec.u64()?;
        let shed_rate_limited = dec.u64()?;
        let shed_queue_full = dec.u64()?;
        let shed_quarantined = dec.u64()?;
        let mut queue_delay_us = Vec::new();
        for _ in 0..dec.seq_len()? {
            queue_delay_us.push(dec.f64()?);
        }
        let mut e2e_us = Vec::new();
        for _ in 0..dec.seq_len()? {
            e2e_us.push(dec.f64()?);
        }
        Ok(TenantStats {
            generated,
            admitted,
            served,
            shed_rate_limited,
            shed_queue_full,
            shed_quarantined,
            queue_delay_us,
            e2e_us,
        })
    }
}

/// Which event the loop services next; variant order is the tie-break
/// (completions quiesce a shard before the chaos/refill/arrival that
/// would touch it, so both admission and chaos injection happen at
/// quiesce points).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    Completion,
    Chaos,
    Refill,
    Arrival,
}

/// The fleet event loop: arrivals → admission → continuous batching →
/// sharded service, with every outcome accounted.
pub struct FleetServer {
    config: FleetConfig,
    hub: Telemetry,
    now: SimTime,
    arrivals: ArrivalProcess,
    limiter: RateLimiter,
    /// Admitted-pending queues: arrived but not yet through the token
    /// bucket. Bounded by `admission_backlog` per tenant.
    pending: BTreeMap<u32, VecDeque<Request>>,
    batcher: ContinuousBatcher,
    shards: Vec<ShardState>,
    /// Rendezvous router over the *live* replica ids; every tenant has a
    /// home replica, recomputed with HRW minimal remap as replicas come
    /// and go.
    router: ShardRouter,
    /// Migration overrides: tenant → replica id, consulted before the
    /// router. An override is dropped (the tenant falls back to its HRW
    /// home) if its target replica dies.
    overrides: BTreeMap<u32, u32>,
    /// Scheduled chaos events, fired at quiesce points.
    chaos: ChaosPlan,
    /// Next un-fired event in `chaos`.
    chaos_cursor: usize,
    /// Chaos events applied (skipped ones excluded).
    chaos_applied: u64,
    /// In-flight requests requeued by crashes/unplugs.
    requeued: u64,
    /// Migrations applied.
    migrations: u64,
    quarantined: BTreeSet<u32>,
    stats: BTreeMap<u32, TenantStats>,
}

impl FleetServer {
    /// Builds an idle fleet from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the config has no shards or no tenants, or a tenant has
    /// a zero mean inter-arrival / zero-shaped bucket.
    pub fn new(config: FleetConfig) -> FleetServer {
        assert!(config.shards > 0, "fleet needs at least one shard");
        assert!(!config.tenants.is_empty(), "fleet needs at least one tenant");
        assert!(config.max_batch > 0, "max_batch must be positive");
        assert!(config.admission_backlog > 0, "admission_backlog must be positive");
        let loads: Vec<(u32, SimDuration)> =
            config.tenants.iter().map(|t| (t.tag, t.mean_interarrival)).collect();
        let arrivals = ArrivalProcess::new(config.seed, &loads);
        let mut limiter = RateLimiter::new(config.rate_limiting);
        let mut pending = BTreeMap::new();
        let mut stats = BTreeMap::new();
        for t in &config.tenants {
            limiter.add_tenant(t.tag, t.burst, t.rate_per_sec);
            pending.insert(t.tag, VecDeque::new());
            stats.insert(t.tag, TenantStats::default());
        }
        let tags: Vec<u32> = config.tenants.iter().map(|t| t.tag).collect();
        let batcher = ContinuousBatcher::new(&tags);
        let shards: Vec<ShardState> = (0..config.shards)
            .map(|id| ShardState {
                id,
                busy_until: SimTime::ZERO,
                rounds: 0,
                in_flight: Vec::new(),
                draining: false,
            })
            .collect();
        let ids: Vec<u32> = shards.iter().map(|s| s.id).collect();
        FleetServer {
            config,
            hub: Telemetry::new(EVENT_CAPACITY),
            now: SimTime::ZERO,
            arrivals,
            limiter,
            pending,
            batcher,
            shards,
            router: ShardRouter::new(&ids),
            overrides: BTreeMap::new(),
            chaos: ChaosPlan::default(),
            chaos_cursor: 0,
            chaos_applied: 0,
            requeued: 0,
            migrations: 0,
            quarantined: BTreeSet::new(),
            stats,
        }
    }

    /// Installs (replacing) the chaos plan. Events strictly before the
    /// current loop time fire at the next quiesce point.
    pub fn set_chaos_plan(&mut self, plan: ChaosPlan) {
        self.chaos = plan;
        self.chaos_cursor = 0;
    }

    /// Stable ids of the currently live replicas, ascending.
    pub fn replicas(&self) -> Vec<u32> {
        self.router.shard_ids().to_vec()
    }

    /// The replica id a tenant's batches are routed to right now —
    /// a migration override if one is active, the HRW home otherwise.
    pub fn home_of(&self, tenant: u32) -> u32 {
        self.overrides
            .get(&tenant)
            .copied()
            .unwrap_or_else(|| self.router.shard_for(tenant))
    }

    /// The fleet's telemetry hub (digest, counters, per-tenant hops).
    pub fn telemetry(&self) -> &Telemetry {
        &self.hub
    }

    /// Current fleet-loop time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Requests generated by the arrival process so far.
    pub fn generated(&self) -> u64 {
        self.arrivals.generated()
    }

    /// Requests waiting for admission (arrived, not yet through the
    /// bucket) plus admitted-but-undispatched requests.
    pub fn backlog(&self) -> usize {
        self.pending.values().map(VecDeque::len).sum::<usize>() + self.batcher.queued()
    }

    /// Tenants currently quarantined at admission.
    pub fn quarantined(&self) -> Vec<u32> {
        self.quarantined.iter().copied().collect()
    }

    // --- event loop -----------------------------------------------------

    /// Earliest pending refill across tenants with admission-blocked work
    /// (only meaningful when rate limiting is on).
    fn next_refill(&mut self) -> Option<SimTime> {
        if !self.limiter.enabled() {
            return None;
        }
        let now = self.now;
        let mut earliest: Option<SimTime> = None;
        let tags: Vec<u32> = self
            .pending
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(&t, _)| t)
            .collect();
        for t in tags {
            let wait = self.limiter.time_until_admit(t, now);
            let at = now + wait;
            earliest = Some(earliest.map_or(at, |e| e.min(at)));
        }
        earliest
    }

    /// Earliest busy-shard completion after `now`.
    fn next_completion(&self) -> Option<SimTime> {
        self.shards
            .iter()
            .filter(|s| !s.in_flight.is_empty())
            .map(|s| s.busy_until)
            .filter(|&t| t > self.now)
            .min()
    }

    /// Fire time of the next un-fired chaos event, if any.
    fn next_chaos(&self) -> Option<SimTime> {
        self.chaos.events().get(self.chaos_cursor).map(|&(at, _)| at)
    }

    /// Records completions: every shard whose round has finished by `now`
    /// has its in-flight batch accounted (idle + per-hop spans + stats),
    /// in ascending replica order for determinism. Draining replicas that
    /// fall idle retire here.
    fn finish_rounds(&mut self) {
        for i in 0..self.shards.len() {
            if self.shards[i].in_flight.is_empty() || self.shards[i].busy_until > self.now {
                continue;
            }
            let done = std::mem::take(&mut self.shards[i].in_flight);
            for inf in done {
                let tenant = Some(inf.req.tenant);
                let stream = Some(inf.req.id);
                self.hub.advance_idle(tenant, inf.wait);
                self.hub.advance_span(Hop::AdaptorStage, tenant, stream, inf.stage);
                self.hub.advance_span(Hop::AdaptorCrypt, tenant, stream, inf.crypt);
                self.hub.advance_span(Hop::ScFilter, tenant, stream, inf.filter);
                self.hub.advance_span(Hop::ScCrypt, tenant, stream, SimDuration::ZERO);
                self.hub.advance_span(Hop::Link, tenant, stream, inf.link);
                self.hub.advance_span(Hop::Dma, tenant, stream, inf.compute);
                let service = inf.service();
                let s = self.stats.get_mut(&inf.req.tenant).expect("stats exist for tenant");
                s.served += 1;
                s.queue_delay_us.push(inf.wait.as_secs_f64() * 1e6);
                s.e2e_us.push((inf.wait + service).as_secs_f64() * 1e6);
                self.hub.counter_add("serve.served", 1);
            }
        }
        self.retire_drained();
    }

    /// Removes draining replicas that have fallen idle.
    fn retire_drained(&mut self) {
        let now = self.now;
        let mut retired: Vec<u32> = Vec::new();
        self.shards.retain(|s| {
            if s.draining && s.idle_at(now) {
                retired.push(s.id);
                false
            } else {
                true
            }
        });
        for id in retired {
            self.hub.record(
                Severity::Info,
                "fleet.chaos.drain_complete",
                None,
                None,
                format!("replica={id}"),
            );
            self.hub.counter_add("fleet.chaos.replicas_removed", 1);
        }
    }

    /// Applies the next scheduled chaos event (the caller has checked the
    /// fire time) at the current quiesce point.
    fn apply_next_chaos(&mut self) {
        let (_, event) = self.chaos.events()[self.chaos_cursor];
        self.chaos_cursor += 1;
        match event {
            ChaosEvent::Crash { replica } | ChaosEvent::HotUnplug { replica } => {
                self.remove_replica(replica, event);
            }
            ChaosEvent::Drain { replica } => self.drain_replica(replica),
            ChaosEvent::HotPlug { replica } => self.plug_replica(replica),
            ChaosEvent::Migrate { tenant, to } => self.migrate_tenant(tenant, to),
        }
    }

    /// Records a chaos event the fleet cannot apply (unknown/last
    /// replica, dead migration target). Skips are visible, never silent.
    fn skip_chaos(&mut self, event: ChaosEvent, why: &str) {
        self.hub.record(
            Severity::Warn,
            "fleet.chaos.skipped",
            None,
            None,
            format!("class={} why={why}", event.class()),
        );
        self.hub.counter_add("fleet.chaos.skipped", 1);
    }

    /// Kills a replica (hard crash or link hot-unplug): the routing entry
    /// disappears (HRW minimal remap re-homes its tenants), its in-flight
    /// batch is requeued at the front of the owning tenants' queues with
    /// original arrival stamps, and overrides pointing at it fall back to
    /// HRW homes. Unplug additionally types the in-flight losses.
    fn remove_replica(&mut self, replica: u32, event: ChaosEvent) {
        if self.router.remove_shard(replica).is_err() {
            let why =
                if self.router.shard_ids().contains(&replica) { "last" } else { "unknown" };
            self.skip_chaos(event, why);
            return;
        }
        let idx = self
            .shards
            .iter()
            .position(|s| s.id == replica)
            .expect("router and shard list agree");
        let dead = self.shards.remove(idx);
        let lost = dead.in_flight.len();
        // Reverse order so front-pushes restore the original FIFO order.
        for inf in dead.in_flight.into_iter().rev() {
            self.batcher.requeue_front(inf.req);
        }
        self.requeued += lost as u64;
        self.chaos_applied += 1;
        let rehomed: Vec<u32> = self
            .overrides
            .iter()
            .filter(|&(_, &to)| to == replica)
            .map(|(&t, _)| t)
            .collect();
        for t in &rehomed {
            self.overrides.remove(t);
        }
        let kind = match event {
            ChaosEvent::HotUnplug { .. } => "fleet.chaos.hot_unplug",
            _ => "fleet.chaos.crash",
        };
        self.hub.record(
            Severity::Error,
            kind,
            None,
            None,
            format!("replica={replica} requeued={lost} rehomed={}", rehomed.len()),
        );
        self.hub.counter_add("fleet.chaos.events", 1);
        self.hub.counter_add("fleet.chaos.requeued", lost as u64);
        self.hub.counter_add("fleet.chaos.replicas_removed", 1);
        if matches!(event, ChaosEvent::HotUnplug { .. }) {
            // Each in-flight request had DMA on the severed link; the
            // requeue is the retry that absorbs the typed loss.
            self.hub.counter_add("fleet.chaos.unplug_lost_tlps", lost as u64);
        }
    }

    /// Starts a graceful drain: the replica leaves the routing table now
    /// (new work re-homes), finishes its current round, and retires at
    /// the next quiesce point it is idle.
    fn drain_replica(&mut self, replica: u32) {
        if self.router.remove_shard(replica).is_err() {
            let why =
                if self.router.shard_ids().contains(&replica) { "last" } else { "unknown" };
            self.skip_chaos(ChaosEvent::Drain { replica }, why);
            return;
        }
        let shard = self
            .shards
            .iter_mut()
            .find(|s| s.id == replica)
            .expect("router and shard list agree");
        shard.draining = true;
        self.overrides.retain(|_, &mut to| to != replica);
        self.chaos_applied += 1;
        self.hub.record(
            Severity::Warn,
            "fleet.chaos.drain",
            None,
            None,
            format!("replica={replica}"),
        );
        self.hub.counter_add("fleet.chaos.events", 1);
        self.retire_drained();
    }

    /// Hot-plugs a fresh blade under a never-used stable id. The blade is
    /// routable immediately but pays [`BRINGUP_LATENCY`] (the attested
    /// bring-up chain) before its first batch.
    fn plug_replica(&mut self, replica: u32) {
        if self.router.add_shard(replica).is_err() {
            self.skip_chaos(ChaosEvent::HotPlug { replica }, "duplicate");
            return;
        }
        let pos = self.shards.partition_point(|s| s.id < replica);
        self.shards.insert(
            pos,
            ShardState {
                id: replica,
                busy_until: self.now + BRINGUP_LATENCY,
                rounds: 0,
                in_flight: Vec::new(),
                draining: false,
            },
        );
        self.chaos_applied += 1;
        self.hub.record(
            Severity::Info,
            "fleet.chaos.hot_plug",
            None,
            None,
            format!("replica={replica} bringup_picos={}", BRINGUP_LATENCY.as_picos()),
        );
        self.hub.counter_add("fleet.chaos.events", 1);
        self.hub.counter_add("fleet.chaos.replicas_added", 1);
    }

    /// Live-migrates a tenant's home to `to`. The tenant's token bucket,
    /// pending queue, batcher queue, stats, and quarantine standing are
    /// tenant-keyed fleet-global state, so they move exactly-once by
    /// construction; only the routing home changes.
    fn migrate_tenant(&mut self, tenant: u32, to: u32) {
        if !self.stats.contains_key(&tenant) {
            self.skip_chaos(ChaosEvent::Migrate { tenant, to }, "unknown_tenant");
            return;
        }
        if !self.router.shard_ids().contains(&to) {
            self.skip_chaos(ChaosEvent::Migrate { tenant, to }, "dead_target");
            return;
        }
        let from = self.home_of(tenant);
        self.hub.record(
            Severity::Info,
            "fleet.migrate.start",
            Some(tenant),
            None,
            format!("from={from} to={to}"),
        );
        self.overrides.insert(tenant, to);
        self.chaos_applied += 1;
        self.migrations += 1;
        self.hub.record(
            Severity::Info,
            "fleet.migrate.complete",
            Some(tenant),
            None,
            format!("from={from} to={to} carried=bucket,queue,quarantine"),
        );
        self.hub.counter_add("fleet.chaos.events", 1);
        self.hub.counter_add("fleet.migrate.count", 1);
    }

    /// Moves admission-blocked requests through the token buckets into the
    /// batcher, in tenant-tag order.
    fn drain_pending(&mut self) {
        let now = self.now;
        let tags: Vec<u32> = self.pending.keys().copied().collect();
        for t in tags {
            loop {
                let has_head =
                    self.pending.get(&t).is_some_and(|q| !q.is_empty());
                if !has_head || !self.limiter.try_admit(t, now) {
                    break;
                }
                let req = self
                    .pending
                    .get_mut(&t)
                    .and_then(VecDeque::pop_front)
                    .expect("head checked above");
                if let Some(s) = self.stats.get_mut(&t) {
                    s.admitted += 1;
                }
                self.hub.counter_add("serve.admitted", 1);
                self.batcher.enqueue(req);
            }
        }
    }

    /// Gives every idle, non-draining shard a batch of the tenants homed
    /// to it, in ascending replica order.
    fn try_dispatch(&mut self) {
        for i in 0..self.shards.len() {
            let shard = &self.shards[i];
            if shard.draining || shard.busy_until > self.now || self.batcher.queued() == 0 {
                continue;
            }
            let id = shard.id;
            let router = &self.router;
            let overrides = &self.overrides;
            let batch = self.batcher.form_batch_where(self.config.max_batch, |tenant| {
                overrides
                    .get(&tenant)
                    .copied()
                    .unwrap_or_else(|| router.shard_for(tenant))
                    == id
            });
            if batch.is_empty() {
                continue;
            }
            self.serve_round(i, batch);
        }
    }

    /// Prices one pump round on one shard and marks the batch in flight.
    /// Nothing is *recorded* here — waits, spans, and served counts are
    /// accounted by [`FleetServer::finish_rounds`] when the round
    /// completes, so a crash mid-round can requeue the batch with
    /// exactly-once stats.
    fn serve_round(&mut self, shard_idx: usize, batch: Vec<Request>) {
        let now = self.now;
        let batch_size = batch.len() as u32;
        let head_id = batch[0].id;
        let perf = PerfModel::new(self.config.device.clone(), OptimizationConfig::all_on());
        let mut round_end = now;
        let mut in_flight = Vec::with_capacity(batch.len());
        for req in batch {
            // Transfer hops priced per request (each request's prompt and
            // tokens cross the SC individually); compute priced at the
            // round's batch size so batching contention is visible.
            let solo = InferenceWorkload::new(
                self.config.model.clone(),
                req.input_tokens,
                req.output_tokens,
                1,
            );
            let batched = InferenceWorkload::new(
                self.config.model.clone(),
                req.input_tokens,
                req.output_tokens,
                batch_size,
            );
            let prefill: CostBreakdown = perf.price(&solo.prefill_profile());
            let step: CostBreakdown = perf.price(&solo.step_profile());
            let steps = u64::from(req.output_tokens);
            let link = prefill.base_transfer
                + prefill.tag_traffic
                + (step.base_transfer + step.tag_traffic) * steps;
            let stage = prefill.base_mmio
                + prefill.sc_interaction
                + (step.base_mmio + step.sc_interaction) * steps;
            let crypt = prefill.crypto + step.crypto * steps;
            let filter = prefill.sc_pipeline + step.sc_pipeline * steps;
            let compute = batched.prefill_time(&self.config.device)
                + batched.step_time(&self.config.device) * steps;
            let service = link + stage + crypt + filter + compute;
            let wait = now.duration_since(req.arrived);
            round_end = round_end.max(now + service);
            in_flight.push(InFlight { req, wait, stage, crypt, filter, link, compute });
        }
        let shard = &mut self.shards[shard_idx];
        shard.busy_until = round_end;
        shard.rounds += 1;
        shard.in_flight = in_flight;
        let shard_id = shard.id;
        self.hub.record(
            Severity::Info,
            "serve.round",
            None,
            Some(head_id),
            format!("shard={shard_id} n={batch_size}"),
        );
        self.hub.counter_add("serve.rounds", 1);
        self.hub.histogram_record("serve.batch_size", f64::from(batch_size));
    }

    /// Sheds one request with a typed reason — counted, recorded, never
    /// silent.
    fn shed(&mut self, req: &Request, reason: ShedReason) {
        let s = self.stats.get_mut(&req.tenant).expect("stats exist for tenant");
        match reason {
            ShedReason::RateLimited => s.shed_rate_limited += 1,
            ShedReason::QueueFull => s.shed_queue_full += 1,
            ShedReason::Quarantined => s.shed_quarantined += 1,
        }
        self.hub.record(
            Severity::Warn,
            "serve.shed",
            Some(req.tenant),
            Some(req.id),
            reason.as_str(),
        );
        self.hub
            .counter_add(&format!("serve.shed.{}", reason.as_str()), 1);
    }

    /// Handles one arrival: quarantine check, backlog check, then the
    /// pending queue.
    fn accept(&mut self, req: Request) {
        self.hub.counter_add("serve.generated", 1);
        if let Some(s) = self.stats.get_mut(&req.tenant) {
            s.generated += 1;
        }
        if self.quarantined.contains(&req.tenant) {
            self.shed(&req, ShedReason::Quarantined);
            return;
        }
        let backlog = self.pending.get(&req.tenant).map_or(0, VecDeque::len);
        if backlog >= self.config.admission_backlog {
            // The backlog exists to absorb rate-limit waits; when it is
            // full under an active limiter the tenant is over contract,
            // otherwise the fleet itself cannot keep up.
            let reason = if self.limiter.enabled() {
                ShedReason::RateLimited
            } else {
                ShedReason::QueueFull
            };
            self.shed(&req, reason);
            return;
        }
        self.pending
            .get_mut(&req.tenant)
            .expect("pending queue exists for registered tenant")
            .push_back(req);
    }

    /// Runs the loop until `target` requests have been generated in
    /// total. Work may remain queued (or admission-blocked) when this
    /// returns — exactly the mid-flight state the snapshot tests freeze.
    pub fn generate(&mut self, target: u64) {
        while self.arrivals.generated() < target {
            let arrival_at = self.arrivals.peek();
            let completion_at = self.next_completion();
            let refill_at = self.next_refill();
            let chaos_at = self.next_chaos();
            let mut best = (EventKind::Arrival, arrival_at);
            if let Some(at) = refill_at {
                if at < best.1 || (at == best.1 && EventKind::Refill < best.0) {
                    best = (EventKind::Refill, at);
                }
            }
            if let Some(at) = chaos_at {
                if at < best.1 || (at == best.1 && EventKind::Chaos < best.0) {
                    best = (EventKind::Chaos, at);
                }
            }
            if let Some(at) = completion_at {
                if at < best.1 || (at == best.1 && EventKind::Completion < best.0) {
                    best = (EventKind::Completion, at);
                }
            }
            if best.1 > self.now {
                self.now = best.1;
            }
            self.finish_rounds();
            match best.0 {
                EventKind::Arrival => {
                    let req = self.arrivals.next_request();
                    self.accept(req);
                }
                EventKind::Chaos => self.apply_next_chaos(),
                EventKind::Completion | EventKind::Refill => {}
            }
            self.drain_pending();
            self.try_dispatch();
        }
    }

    /// Runs completion/refill/chaos events (no new arrivals) until every
    /// queue is empty and every shard idle. Chaos events scheduled past
    /// that point stay un-fired.
    pub fn drain(&mut self) {
        loop {
            self.finish_rounds();
            self.drain_pending();
            self.try_dispatch();
            let idle = self.backlog() == 0
                && self.shards.iter().all(|s| s.in_flight.is_empty());
            if idle {
                break;
            }
            let completion_at = self.next_completion();
            let refill_at = self.next_refill();
            let chaos_at = self.next_chaos().filter(|&at| at > self.now);
            let mut next: Option<SimTime> = None;
            for at in [completion_at, chaos_at, refill_at].into_iter().flatten() {
                next = Some(next.map_or(at, |n| n.min(at)));
            }
            match next {
                Some(at) => {
                    if at > self.now {
                        self.now = at;
                    }
                    self.finish_rounds();
                    if self.next_chaos().is_some_and(|c| c <= self.now) {
                        self.apply_next_chaos();
                    }
                }
                None => {
                    // No future event but work remains: a chaos event at
                    // or before now must be blocking (e.g. every tenant's
                    // home is draining). Fire it.
                    if self.next_chaos().is_some_and(|c| c <= self.now) {
                        self.apply_next_chaos();
                    } else {
                        break;
                    }
                }
            }
        }
        debug_assert_eq!(self.backlog(), 0, "drain left queued work");
    }

    /// Quarantines a tenant: future arrivals shed at admission and every
    /// queued (pending or batched) request is shed as
    /// [`ShedReason::Quarantined`].
    pub fn quarantine_tenant(&mut self, tenant: u32) {
        if !self.quarantined.insert(tenant) {
            return;
        }
        self.hub.record(
            Severity::Error,
            "serve.quarantine",
            Some(tenant),
            None,
            "tenant quarantined at admission",
        );
        let mut stranded: Vec<Request> = self
            .pending
            .get_mut(&tenant)
            .map(|q| q.drain(..).collect())
            .unwrap_or_default();
        stranded.extend(self.batcher.drain_tenant(tenant));
        for req in stranded {
            self.shed(&req, ShedReason::Quarantined);
        }
    }

    /// Mirrors an externally observed quarantine set (e.g. from the
    /// sharded systems' PCIe-SCs) into admission control.
    pub fn sync_quarantine(&mut self, tenants: &[u32]) {
        for &t in tenants {
            self.quarantine_tenant(t);
        }
    }

    // --- reporting ------------------------------------------------------

    /// Point-in-time serving report.
    pub fn report(&self) -> FleetSnapshot {
        let tenants = self
            .stats
            .iter()
            .map(|(&tag, s)| TenantReport {
                tenant: tag,
                generated: s.generated,
                admitted: s.admitted,
                served: s.served,
                shed_rate_limited: s.shed_rate_limited,
                shed_queue_full: s.shed_queue_full,
                shed_quarantined: s.shed_quarantined,
                queued: self.pending.get(&tag).map_or(0, VecDeque::len) as u64
                    + self.batcher.queued_for(tag) as u64,
                queue_delay_us: Summary::try_from_samples(&s.queue_delay_us),
                e2e_us: Summary::try_from_samples(&s.e2e_us),
                idle: self.hub.idle_for_tenant(tag),
            })
            .collect();
        FleetSnapshot {
            schema: FLEET_SCHEMA,
            seed: self.config.seed,
            shards: self.config.shards,
            rate_limiting: self.config.rate_limiting,
            generated: self.arrivals.generated(),
            rounds: self.shards.iter().map(|s| s.rounds).sum(),
            now: self.now,
            replicas: self.replicas(),
            chaos_events: self.chaos_applied,
            requeued: self.requeued,
            migrations: self.migrations,
            tenants,
            telemetry: self.hub.snapshot(),
        }
    }

    // --- snapshot/resume ------------------------------------------------

    /// Freezes the whole fleet — arrivals, buckets, queues, shard clocks,
    /// stats and telemetry — into a resumable byte image.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut enc = Encoder::versioned();
        enc.u64(self.config.fingerprint());
        enc.u64(self.now.as_picos());
        self.arrivals.encode(&mut enc);
        self.limiter.encode(&mut enc);
        enc.u64(self.pending.len() as u64);
        for (&tag, queue) in &self.pending {
            enc.u32(tag);
            enc.u64(queue.len() as u64);
            for req in queue {
                req.encode(&mut enc);
            }
        }
        self.batcher.encode(&mut enc);
        enc.u64(self.quarantined.len() as u64);
        for &t in &self.quarantined {
            enc.u32(t);
        }
        enc.u64(self.shards.len() as u64);
        for s in &self.shards {
            enc.u32(s.id);
            enc.u64(s.busy_until.as_picos());
            enc.u64(s.rounds);
            enc.bool(s.draining);
            enc.u64(s.in_flight.len() as u64);
            for inf in &s.in_flight {
                inf.encode(&mut enc);
            }
        }
        enc.u64(self.overrides.len() as u64);
        for (&tenant, &to) in &self.overrides {
            enc.u32(tenant);
            enc.u32(to);
        }
        self.chaos.encode(&mut enc);
        enc.u64(self.chaos_cursor as u64);
        enc.u64(self.chaos_applied);
        enc.u64(self.requeued);
        enc.u64(self.migrations);
        enc.u64(self.stats.len() as u64);
        for (&tag, s) in &self.stats {
            enc.u32(tag);
            s.encode(&mut enc);
        }
        self.hub.encode_snapshot(&mut enc);
        enc.finish()
    }

    /// Rebuilds a fleet from a [`FleetServer::snapshot`] image.
    ///
    /// # Errors
    ///
    /// [`SnapshotError`] if the image is malformed or was taken under a
    /// different [`FleetConfig`] (fingerprint mismatch).
    pub fn resume(config: FleetConfig, bytes: &[u8]) -> Result<FleetServer, SnapshotError> {
        let mut dec = Decoder::versioned(bytes)?;
        if dec.u64()? != config.fingerprint() {
            return Err(SnapshotError::Invalid("fleet config fingerprint mismatch"));
        }
        let now = SimTime::from_picos(dec.u64()?);
        let arrivals = ArrivalProcess::decode(&mut dec)?;
        let limiter = RateLimiter::decode(&mut dec)?;
        let mut pending: BTreeMap<u32, VecDeque<Request>> = BTreeMap::new();
        for _ in 0..dec.seq_len()? {
            let tag = dec.u32()?;
            let mut queue = VecDeque::new();
            for _ in 0..dec.seq_len()? {
                queue.push_back(Request::decode(&mut dec)?);
            }
            pending.insert(tag, queue);
        }
        let batcher = ContinuousBatcher::decode(&mut dec)?;
        let mut quarantined = BTreeSet::new();
        for _ in 0..dec.seq_len()? {
            quarantined.insert(dec.u32()?);
        }
        let mut shards = Vec::new();
        for _ in 0..dec.seq_len()? {
            let id = dec.u32()?;
            let busy_until = SimTime::from_picos(dec.u64()?);
            let rounds = dec.u64()?;
            let draining = dec.bool()?;
            let mut in_flight = Vec::new();
            for _ in 0..dec.seq_len()? {
                in_flight.push(InFlight::decode(&mut dec)?);
            }
            shards.push(ShardState { id, busy_until, rounds, in_flight, draining });
        }
        if shards.is_empty() {
            return Err(SnapshotError::Invalid("fleet snapshot has no shards"));
        }
        let live: Vec<u32> =
            shards.iter().filter(|s| !s.draining).map(|s| s.id).collect();
        if live.is_empty() {
            return Err(SnapshotError::Invalid("fleet snapshot has no live shards"));
        }
        let router = ShardRouter::new(&live);
        let mut overrides = BTreeMap::new();
        for _ in 0..dec.seq_len()? {
            let tenant = dec.u32()?;
            let to = dec.u32()?;
            overrides.insert(tenant, to);
        }
        let chaos = ChaosPlan::decode(&mut dec)?;
        let chaos_cursor = usize::try_from(dec.u64()?)
            .map_err(|_| SnapshotError::Invalid("chaos cursor"))?;
        if chaos_cursor > chaos.len() {
            return Err(SnapshotError::Invalid("chaos cursor out of range"));
        }
        let chaos_applied = dec.u64()?;
        let requeued = dec.u64()?;
        let migrations = dec.u64()?;
        let mut stats = BTreeMap::new();
        for _ in 0..dec.seq_len()? {
            let tag = dec.u32()?;
            stats.insert(tag, TenantStats::decode(&mut dec)?);
        }
        let hub = Telemetry::new(EVENT_CAPACITY);
        hub.restore_snapshot(&mut dec)?;
        dec.finish()?;
        Ok(FleetServer {
            config,
            hub,
            now,
            arrivals,
            limiter,
            pending,
            batcher,
            shards,
            router,
            overrides,
            chaos,
            chaos_cursor,
            chaos_applied,
            requeued,
            migrations,
            quarantined,
            stats,
        })
    }
}

/// Per-tenant slice of a [`FleetSnapshot`].
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant tag.
    pub tenant: u32,
    /// Requests its arrival lane generated.
    pub generated: u64,
    /// Requests that cleared admission.
    pub admitted: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Sheds because the token bucket was dry.
    pub shed_rate_limited: u64,
    /// Sheds because the fleet backlog was full.
    pub shed_queue_full: u64,
    /// Sheds because the tenant was quarantined.
    pub shed_quarantined: u64,
    /// Requests still queued (pending admission or batched).
    pub queued: u64,
    /// Queue-delay distribution in microseconds (None until first serve).
    pub queue_delay_us: Option<Summary>,
    /// End-to-end latency distribution in microseconds.
    pub e2e_us: Option<Summary>,
    /// Idle/wait time charged to this tenant.
    pub idle: SimDuration,
}

/// Point-in-time fleet serving report with embedded telemetry.
#[derive(Debug, Clone)]
pub struct FleetSnapshot {
    /// Schema tag ([`FLEET_SCHEMA`]).
    pub schema: &'static str,
    /// Arrival seed the run was driven by.
    pub seed: u64,
    /// Service lanes.
    pub shards: u32,
    /// Whether rate limiting was active.
    pub rate_limiting: bool,
    /// Total requests generated.
    pub generated: u64,
    /// Pump rounds dispatched across all shards.
    pub rounds: u64,
    /// Fleet-loop time of the report.
    pub now: SimTime,
    /// Stable ids of the live (routable) replicas, ascending. Chaos
    /// events name their targets by these ids.
    pub replicas: Vec<u32>,
    /// Chaos events applied so far (skipped events excluded).
    pub chaos_events: u64,
    /// In-flight requests requeued by crash/unplug failovers.
    pub requeued: u64,
    /// Live tenant migrations applied.
    pub migrations: u64,
    /// Per-tenant breakdown, tag-ascending.
    pub tenants: Vec<TenantReport>,
    /// Full telemetry snapshot (per-tenant hop latencies included).
    pub telemetry: TelemetrySnapshot,
}

impl FleetSnapshot {
    /// Renders the report as deterministic JSON (keys in fixed order).
    pub fn to_json(&self) -> String {
        fn summary_json(s: &Option<Summary>) -> String {
            match s {
                None => "null".to_owned(),
                Some(s) => format!(
                    "{{ \"count\": {}, \"mean\": {:.3}, \"p50\": {:.3}, \"p99\": {:.3}, \"max\": {:.3} }}",
                    s.count(),
                    s.mean(),
                    s.p50(),
                    s.p99(),
                    s.max()
                ),
            }
        }
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{}\",\n", self.schema));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"shards\": {},\n", self.shards));
        out.push_str(&format!("  \"rate_limiting\": {},\n", self.rate_limiting));
        out.push_str(&format!("  \"generated\": {},\n", self.generated));
        out.push_str(&format!("  \"rounds\": {},\n", self.rounds));
        let replicas: Vec<String> = self.replicas.iter().map(u32::to_string).collect();
        out.push_str(&format!("  \"replicas\": [{}],\n", replicas.join(", ")));
        out.push_str(&format!(
            "  \"chaos\": {{ \"events\": {}, \"requeued\": {}, \"migrations\": {} }},\n",
            self.chaos_events, self.requeued, self.migrations
        ));
        out.push_str(&format!("  \"now_picos\": {},\n", self.now.as_picos()));
        out.push_str("  \"tenants\": [\n");
        for (i, t) in self.tenants.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"tenant\": {},\n", t.tenant));
            out.push_str(&format!("      \"generated\": {},\n", t.generated));
            out.push_str(&format!("      \"admitted\": {},\n", t.admitted));
            out.push_str(&format!("      \"served\": {},\n", t.served));
            out.push_str(&format!(
                "      \"shed\": {{ \"rate_limited\": {}, \"queue_full\": {}, \"quarantined\": {} }},\n",
                t.shed_rate_limited, t.shed_queue_full, t.shed_quarantined
            ));
            out.push_str(&format!("      \"queued\": {},\n", t.queued));
            out.push_str(&format!(
                "      \"queue_delay_us\": {},\n",
                summary_json(&t.queue_delay_us)
            ));
            out.push_str(&format!("      \"e2e_us\": {},\n", summary_json(&t.e2e_us)));
            out.push_str(&format!("      \"idle_picos\": {}\n", t.idle.as_picos()));
            out.push_str(if i + 1 == self.tenants.len() { "    }\n" } else { "    },\n" });
        }
        out.push_str("  ],\n");
        out.push_str("  \"telemetry\":\n");
        let telemetry = self.telemetry.to_json();
        for (i, line) in telemetry.lines().enumerate() {
            if i > 0 {
                out.push('\n');
            }
            out.push_str("  ");
            out.push_str(line);
        }
        out.push('\n');
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(seed: u64, rate_limiting: bool) -> FleetConfig {
        let tenants = (0..4)
            .map(|i| TenantSpec::new(10 + i, SimDuration::from_millis(50), 8, 16))
            .collect();
        FleetConfig {
            seed,
            shards: 2,
            max_batch: 8,
            admission_backlog: 16,
            rate_limiting,
            model: LlmSpec::opt_1_3b(),
            device: XpuSpec::a100(),
            tenants,
        }
    }

    #[test]
    fn fleet_run_is_deterministic() {
        let run = |seed| {
            let mut f = FleetServer::new(small_config(seed, true));
            f.generate(400);
            f.drain();
            (f.telemetry().digest(), f.report().to_json())
        };
        let (d1, j1) = run(7);
        let (d2, j2) = run(7);
        assert_eq!(d1, d2, "same seed, same digest");
        assert_eq!(j1, j2, "same seed, same report");
        let (d3, _) = run(8);
        assert_ne!(d1, d3, "different seed, different digest");
    }

    #[test]
    fn every_generated_request_is_accounted() {
        let mut f = FleetServer::new(small_config(3, true));
        f.generate(500);
        f.drain();
        let report = f.report();
        for t in &report.tenants {
            assert_eq!(
                t.generated,
                t.served + t.shed_rate_limited + t.shed_queue_full + t.shed_quarantined,
                "tenant {} leaked requests",
                t.tenant
            );
            assert_eq!(t.queued, 0, "drain left work queued");
        }
        let total: u64 = report.tenants.iter().map(|t| t.generated).sum();
        assert_eq!(total, 500);
    }

    #[test]
    fn rate_limiting_changes_the_trace_but_not_determinism() {
        let digest = |rl| {
            let mut f = FleetServer::new(small_config(5, rl));
            f.generate(300);
            f.drain();
            f.telemetry().digest()
        };
        assert_eq!(digest(true), digest(true));
        assert_eq!(digest(false), digest(false));
        // An aggressive-enough run sheds under limiting, so traces differ.
        let mut tight = small_config(5, true);
        for t in &mut tight.tenants {
            t.burst = 1;
            t.rate_per_sec = 1;
        }
        let mut f = FleetServer::new(tight);
        f.generate(300);
        f.drain();
        let shed = f.telemetry().counter("serve.shed.rate_limited");
        assert!(shed > 0, "tight buckets must shed");
    }

    #[test]
    fn quarantined_tenant_sheds_typed_and_serves_nothing_more() {
        let mut f = FleetServer::new(small_config(9, true));
        f.generate(100);
        f.quarantine_tenant(11);
        f.generate(400);
        f.drain();
        let report = f.report();
        let victim = report.tenants.iter().find(|t| t.tenant == 11).unwrap();
        assert!(victim.shed_quarantined > 0, "quarantine must shed");
        assert_eq!(
            victim.generated,
            victim.served + victim.shed_rate_limited + victim.shed_queue_full
                + victim.shed_quarantined
        );
        assert!(f.telemetry().counter("serve.shed.quarantined") > 0);
    }

    #[test]
    fn snapshot_mid_flight_resumes_bit_identically() {
        let config = small_config(21, true);
        let mut straight = FleetServer::new(config.clone());
        straight.generate(600);
        straight.drain();

        let mut first = FleetServer::new(config.clone());
        first.generate(250);
        assert!(first.backlog() > 0, "mid-flight snapshot should have queued work");
        let image = first.snapshot();
        let mut second = FleetServer::resume(config, &image).unwrap();
        second.generate(600);
        second.drain();

        assert_eq!(straight.telemetry().digest(), second.telemetry().digest());
        assert_eq!(straight.report().to_json(), second.report().to_json());
    }

    #[test]
    fn resume_rejects_a_different_config() {
        let mut f = FleetServer::new(small_config(2, true));
        f.generate(50);
        let image = f.snapshot();
        let err = match FleetServer::resume(small_config(3, true), &image) {
            Ok(_) => panic!("resume must reject a different config"),
            Err(e) => e,
        };
        assert!(matches!(err, SnapshotError::Invalid(_)));
    }

    #[test]
    fn report_json_has_the_pinned_keys() {
        let mut f = FleetServer::new(small_config(4, true));
        f.generate(200);
        f.drain();
        let json = f.report().to_json();
        for key in [
            "\"schema\": \"ccai.fleet.v1\"",
            "\"tenants\":",
            "\"shed\":",
            "\"queue_delay_us\":",
            "\"e2e_us\":",
            "\"telemetry\":",
            "\"schema\": \"ccai.telemetry.v2\"",
        ] {
            assert!(json.contains(key), "missing key {key} in:\n{json}");
        }
    }
}
