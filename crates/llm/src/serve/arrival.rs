//! Deterministic open-loop arrival process.
//!
//! Fleet traffic is **open-loop**: requests arrive on their own schedule
//! regardless of how fast the service drains them, which is what makes
//! starvation and backpressure observable at all (a closed loop would
//! politely slow down). Each tenant is a Poisson-style source: inter-
//! arrival gaps are exponentially distributed around the tenant's mean,
//! sampled from one shared [`SimRng`] so the whole fleet trace is a pure
//! function of the seed.
//!
//! Request shapes (prompt and generation lengths) come from the same
//! stream, using the `u²` long-tail mapping the prompt generator uses:
//! mostly short exchanges with a heavy tail of long ones.

use ccai_sim::snapshot::{Decoder, Encoder, SnapshotError};
use ccai_sim::{SimDuration, SimRng, SimTime};

/// Smallest sampled inter-arrival gap: two requests never land on the
/// same picosecond, which keeps the event order unambiguous.
pub const MIN_GAP: SimDuration = SimDuration::from_picos(1);

/// Prompt-length band (tokens): `4 + u²·124` spans 4..=128.
pub const INPUT_TOKEN_SPAN: f64 = 124.0;
/// Smallest prompt.
pub const INPUT_TOKEN_FLOOR: u32 = 4;
/// Generation-length band (tokens): `8 + u²·56` spans 8..=64.
pub const OUTPUT_TOKEN_SPAN: f64 = 56.0;
/// Smallest generation.
pub const OUTPUT_TOKEN_FLOOR: u32 = 8;

/// One fleet request, stamped at generation time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Fleet-unique id, assigned in arrival order.
    pub id: u64,
    /// Owning tenant's telemetry tag.
    pub tenant: u32,
    /// Arrival time on the fleet clock.
    pub arrived: SimTime,
    /// Prompt length in tokens.
    pub input_tokens: u32,
    /// Generation length in tokens.
    pub output_tokens: u32,
}

impl Request {
    pub(crate) fn encode(&self, enc: &mut Encoder) {
        enc.u64(self.id);
        enc.u32(self.tenant);
        enc.u64(self.arrived.as_picos());
        enc.u32(self.input_tokens);
        enc.u32(self.output_tokens);
    }

    pub(crate) fn decode(dec: &mut Decoder<'_>) -> Result<Request, SnapshotError> {
        let id = dec.u64()?;
        let tenant = dec.u32()?;
        let arrived = SimTime::from_picos(dec.u64()?);
        let input_tokens = dec.u32()?;
        let output_tokens = dec.u32()?;
        if input_tokens == 0 || output_tokens == 0 {
            return Err(SnapshotError::Invalid("request token counts"));
        }
        Ok(Request { id, tenant, arrived, input_tokens, output_tokens })
    }
}

/// One tenant's arrival lane.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Lane {
    tag: u32,
    mean: SimDuration,
    next_at: SimTime,
}

/// Merged multi-tenant arrival stream.
///
/// Lanes are polled by earliest `next_at` (ties to the earlier lane in
/// declaration order), so the merged stream is totally ordered and
/// deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalProcess {
    rng: SimRng,
    next_id: u64,
    lanes: Vec<Lane>,
}

fn sample_gap(rng: &mut SimRng, mean: SimDuration) -> SimDuration {
    // Inverse-CDF exponential: -ln(1-u)·mean. u < 1 strictly, so the log
    // is finite; the floor keeps gaps positive.
    let u = rng.next_f64();
    SimDuration::from_secs_f64(-(1.0 - u).ln() * mean.as_secs_f64()).max(MIN_GAP)
}

fn sample_tokens(rng: &mut SimRng, floor: u32, span: f64) -> u32 {
    let u = rng.next_f64();
    floor + (u * u * span) as u32
}

impl ArrivalProcess {
    /// Creates a merged stream over `(tenant tag, mean inter-arrival)`
    /// lanes, seeded deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `loads` is empty or any mean gap is zero.
    pub fn new(seed: u64, loads: &[(u32, SimDuration)]) -> ArrivalProcess {
        assert!(!loads.is_empty(), "arrival process needs at least one tenant");
        let mut rng = SimRng::seed_from(seed);
        let lanes = loads
            .iter()
            .map(|&(tag, mean)| {
                assert!(!mean.is_zero(), "tenant {tag} has a zero mean inter-arrival");
                Lane { tag, mean, next_at: SimTime::ZERO + sample_gap(&mut rng, mean) }
            })
            .collect();
        ArrivalProcess { rng, next_id: 0, lanes }
    }

    /// Arrival time of the next request (without consuming it).
    pub fn peek(&self) -> SimTime {
        self.lanes.iter().map(|l| l.next_at).min().expect("lanes are non-empty")
    }

    /// Requests generated so far.
    pub fn generated(&self) -> u64 {
        self.next_id
    }

    /// Produces the next request in global arrival order and schedules its
    /// lane's following arrival.
    pub fn next_request(&mut self) -> Request {
        let lane_idx = self
            .lanes
            .iter()
            .enumerate()
            .min_by_key(|(i, l)| (l.next_at, *i))
            .map(|(i, _)| i)
            .expect("lanes are non-empty");
        let arrived = self.lanes[lane_idx].next_at;
        let tenant = self.lanes[lane_idx].tag;
        let input_tokens = sample_tokens(&mut self.rng, INPUT_TOKEN_FLOOR, INPUT_TOKEN_SPAN);
        let output_tokens = sample_tokens(&mut self.rng, OUTPUT_TOKEN_FLOOR, OUTPUT_TOKEN_SPAN);
        let gap = sample_gap(&mut self.rng, self.lanes[lane_idx].mean);
        self.lanes[lane_idx].next_at = arrived + gap;
        let id = self.next_id;
        self.next_id += 1;
        Request { id, tenant, arrived, input_tokens, output_tokens }
    }

    pub(crate) fn encode(&self, enc: &mut Encoder) {
        for s in self.rng.state() {
            enc.u64(s);
        }
        enc.u64(self.next_id);
        enc.u64(self.lanes.len() as u64);
        for lane in &self.lanes {
            enc.u32(lane.tag);
            enc.u64(lane.mean.as_picos());
            enc.u64(lane.next_at.as_picos());
        }
    }

    pub(crate) fn decode(dec: &mut Decoder<'_>) -> Result<ArrivalProcess, SnapshotError> {
        let state = [dec.u64()?, dec.u64()?, dec.u64()?, dec.u64()?];
        let next_id = dec.u64()?;
        let mut lanes = Vec::new();
        for _ in 0..dec.seq_len()? {
            let tag = dec.u32()?;
            let mean = SimDuration::from_picos(dec.u64()?);
            if mean.is_zero() {
                return Err(SnapshotError::Invalid("arrival lane mean"));
            }
            let next_at = SimTime::from_picos(dec.u64()?);
            lanes.push(Lane { tag, mean, next_at });
        }
        if lanes.is_empty() {
            return Err(SnapshotError::Invalid("arrival process has no lanes"));
        }
        Ok(ArrivalProcess { rng: SimRng::from_state(state), next_id, lanes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loads() -> Vec<(u32, SimDuration)> {
        vec![
            (10, SimDuration::from_millis(100)),
            (20, SimDuration::from_millis(50)),
        ]
    }

    #[test]
    fn same_seed_replays_the_same_trace() {
        let mut a = ArrivalProcess::new(42, &loads());
        let mut b = ArrivalProcess::new(42, &loads());
        for _ in 0..500 {
            assert_eq!(a.next_request(), b.next_request());
        }
    }

    #[test]
    fn arrivals_are_globally_ordered_and_ids_dense() {
        let mut p = ArrivalProcess::new(7, &loads());
        let mut last = SimTime::ZERO;
        for expect_id in 0..1000u64 {
            let r = p.next_request();
            assert_eq!(r.id, expect_id);
            assert!(r.arrived >= last, "arrivals went backwards");
            last = r.arrived;
            assert!(r.input_tokens >= INPUT_TOKEN_FLOOR);
            assert!(r.output_tokens >= OUTPUT_TOKEN_FLOOR);
        }
    }

    #[test]
    fn faster_lane_generates_more_requests() {
        let mut p = ArrivalProcess::new(11, &loads());
        let mut counts = [0u32; 2];
        for _ in 0..2000 {
            let r = p.next_request();
            counts[if r.tenant == 10 { 0 } else { 1 }] += 1;
        }
        // Tenant 20 arrives at twice the rate; expect roughly 2:1.
        let ratio = f64::from(counts[1]) / f64::from(counts[0]);
        assert!((1.6..2.5).contains(&ratio), "rate ratio {ratio}");
    }

    #[test]
    fn mean_gap_matches_the_configured_rate() {
        let mut p = ArrivalProcess::new(3, &[(1, SimDuration::from_millis(10))]);
        let mut last = SimTime::ZERO;
        let n = 4000;
        for _ in 0..n {
            last = p.next_request().arrived;
        }
        let mean_ms = last.as_secs_f64() * 1e3 / f64::from(n);
        assert!((9.0..11.0).contains(&mean_ms), "mean gap {mean_ms} ms");
    }

    #[test]
    fn snapshot_resumes_the_stream_exactly() {
        let mut a = ArrivalProcess::new(99, &loads());
        for _ in 0..100 {
            let _ = a.next_request();
        }
        let mut enc = Encoder::new();
        a.encode(&mut enc);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        let mut b = ArrivalProcess::decode(&mut dec).unwrap();
        dec.finish().unwrap();
        for _ in 0..200 {
            assert_eq!(a.next_request(), b.next_request());
        }
    }

    #[test]
    #[should_panic(expected = "zero mean")]
    fn zero_rate_lane_rejected() {
        let _ = ArrivalProcess::new(0, &[(1, SimDuration::ZERO)]);
    }
}
