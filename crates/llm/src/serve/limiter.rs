//! Per-tenant admission control.
//!
//! Every tenant fronts the fleet through a [`TokenBucket`]: a request
//! costs one token, the bucket refills at the tenant's contracted rate,
//! and bursts up to the bucket capacity ride through untouched. A request
//! that cannot be admitted is **shed with a typed reason** — never
//! silently dropped — so operators can tell "you exceeded your contract"
//! ([`ShedReason::RateLimited`]) apart from "the fleet is saturated"
//! ([`ShedReason::QueueFull`]) and "your hardware tripped containment"
//! ([`ShedReason::Quarantined`]).

use std::collections::BTreeMap;

use ccai_sim::snapshot::{Decoder, Encoder, SnapshotError, SnapshotState};
use ccai_sim::{SimDuration, SimTime, TokenBucket};

/// Why an arrival was refused admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ShedReason {
    /// The tenant's token bucket is empty: contracted rate exceeded.
    RateLimited,
    /// The tenant's admission backlog is full: the fleet cannot absorb
    /// the offered load even before rate accounting.
    QueueFull,
    /// The tenant is quarantined by the PCIe-SC containment policy.
    Quarantined,
}

impl ShedReason {
    /// Stable lowercase name, used in trace events and JSON reports.
    pub fn as_str(self) -> &'static str {
        match self {
            ShedReason::RateLimited => "rate_limited",
            ShedReason::QueueFull => "queue_full",
            ShedReason::Quarantined => "quarantined",
        }
    }
}

/// Fleet-wide admission limiter: one token bucket per registered tenant.
///
/// Disabled limiters admit everything; this is how the determinism tests
/// compare the same arrival trace with and without rate limiting.
#[derive(Debug)]
pub struct RateLimiter {
    enabled: bool,
    buckets: BTreeMap<u32, TokenBucket>,
}

impl RateLimiter {
    /// Creates an empty limiter. When `enabled` is false every
    /// [`try_admit`](RateLimiter::try_admit) succeeds without touching
    /// bucket state.
    pub fn new(enabled: bool) -> RateLimiter {
        RateLimiter { enabled, buckets: BTreeMap::new() }
    }

    /// Whether rate accounting is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Registers a tenant with a full bucket of `burst` tokens refilling
    /// at `rate_per_sec`.
    pub fn add_tenant(&mut self, tenant: u32, burst: u64, rate_per_sec: u64) {
        self.buckets.insert(tenant, TokenBucket::new(burst, rate_per_sec));
    }

    /// Tries to admit one request for `tenant` at `now`. Unregistered
    /// tenants and disabled limiters always admit.
    pub fn try_admit(&mut self, tenant: u32, now: SimTime) -> bool {
        if !self.enabled {
            return true;
        }
        match self.buckets.get_mut(&tenant) {
            Some(bucket) => bucket.try_take(1, now),
            None => true,
        }
    }

    /// Time until one request for `tenant` could be admitted ([`SimDuration::ZERO`]
    /// when it would be admitted right now, or the tenant is unregistered /
    /// the limiter disabled).
    pub fn time_until_admit(&mut self, tenant: u32, now: SimTime) -> SimDuration {
        if !self.enabled {
            return SimDuration::ZERO;
        }
        match self.buckets.get_mut(&tenant) {
            Some(bucket) => bucket.time_until(1, now),
            None => SimDuration::ZERO,
        }
    }

    /// Remaining budget for a tenant in pico-tokens, if registered.
    pub fn budget_pico_tokens(&self, tenant: u32) -> Option<u128> {
        self.buckets.get(&tenant).map(TokenBucket::budget_pico_tokens)
    }

    pub(crate) fn encode(&self, enc: &mut Encoder) {
        enc.bool(self.enabled);
        enc.u64(self.buckets.len() as u64);
        for (&tenant, bucket) in &self.buckets {
            enc.u32(tenant);
            bucket.encode_state(enc);
        }
    }

    pub(crate) fn decode(dec: &mut Decoder<'_>) -> Result<RateLimiter, SnapshotError> {
        let enabled = dec.bool()?;
        let mut buckets = BTreeMap::new();
        for _ in 0..dec.seq_len()? {
            let tenant = dec.u32()?;
            buckets.insert(tenant, TokenBucket::decode_state(dec)?);
        }
        Ok(RateLimiter { enabled, buckets })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(secs: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(secs)
    }

    #[test]
    fn disabled_limiter_admits_everything() {
        let mut lim = RateLimiter::new(false);
        lim.add_tenant(1, 1, 1);
        for _ in 0..100 {
            assert!(lim.try_admit(1, SimTime::ZERO));
        }
        assert!(lim.time_until_admit(1, SimTime::ZERO).is_zero());
    }

    #[test]
    fn unregistered_tenants_are_not_limited() {
        let mut lim = RateLimiter::new(true);
        for _ in 0..100 {
            assert!(lim.try_admit(77, SimTime::ZERO));
        }
    }

    #[test]
    fn burst_then_rate_enforced() {
        let mut lim = RateLimiter::new(true);
        lim.add_tenant(1, 4, 2);
        for _ in 0..4 {
            assert!(lim.try_admit(1, SimTime::ZERO));
        }
        assert!(!lim.try_admit(1, SimTime::ZERO));
        // 2 tokens/s: after one second, two more slots have accrued.
        assert!(lim.try_admit(1, at(1.0)));
        assert!(lim.try_admit(1, at(1.0)));
        assert!(!lim.try_admit(1, at(1.0)));
    }

    #[test]
    fn time_until_admit_is_exact() {
        let mut lim = RateLimiter::new(true);
        lim.add_tenant(1, 1, 1);
        assert!(lim.try_admit(1, SimTime::ZERO));
        let wait = lim.time_until_admit(1, SimTime::ZERO);
        assert!(!wait.is_zero());
        let ready = SimTime::ZERO + wait;
        assert!(lim.try_admit(1, ready));
    }

    #[test]
    fn limiter_snapshot_round_trips() {
        let mut lim = RateLimiter::new(true);
        lim.add_tenant(1, 4, 2);
        lim.add_tenant(9, 8, 16);
        assert!(lim.try_admit(1, at(0.25)));
        assert!(lim.try_admit(9, at(0.5)));

        let mut enc = Encoder::new();
        lim.encode(&mut enc);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        let mut back = RateLimiter::decode(&mut dec).unwrap();
        dec.finish().unwrap();

        assert_eq!(back.enabled(), lim.enabled());
        assert_eq!(back.budget_pico_tokens(1), lim.budget_pico_tokens(1));
        assert_eq!(back.budget_pico_tokens(9), lim.budget_pico_tokens(9));
        // And the restored limiter keeps enforcing from the same point.
        for t in 0..32 {
            let now = at(0.5 + f64::from(t) * 0.01);
            assert_eq!(back.try_admit(1, now), lim.try_admit(1, now));
        }
    }

    #[test]
    fn shed_reasons_have_stable_names() {
        assert_eq!(ShedReason::RateLimited.as_str(), "rate_limited");
        assert_eq!(ShedReason::QueueFull.as_str(), "queue_full");
        assert_eq!(ShedReason::Quarantined.as_str(), "quarantined");
    }
}
