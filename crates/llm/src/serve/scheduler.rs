//! Continuous-batching scheduler with fair-share tenant rotation.
//!
//! Admitted requests wait in per-tenant FIFO queues. When a shard goes
//! idle at a pump-round quiesce point, [`ContinuousBatcher::form_batch`]
//! assembles the next batch by round-robin over tenants: one request per
//! tenant per lap, resuming from a rotating cursor so no tenant is
//! structurally first. A tenant flooding its own queue therefore cannot
//! crowd others out of a batch — it only deepens its own backlog, which
//! is exactly the isolation property the starvation tests pin down.

use std::collections::{BTreeMap, VecDeque};

use ccai_sim::snapshot::{Decoder, Encoder, SnapshotError};

use super::arrival::Request;

/// Fair-share batch former over per-tenant FIFO queues.
#[derive(Debug)]
pub struct ContinuousBatcher {
    /// Admitted-but-undispatched requests, FIFO per tenant.
    queues: BTreeMap<u32, VecDeque<Request>>,
    /// Tenant visitation order (sorted tags — BTreeMap order).
    rotation: Vec<u32>,
    /// Next rotation slot to offer a batch seat to.
    cursor: usize,
    /// Total queued requests across all tenants.
    queued: usize,
}

impl ContinuousBatcher {
    /// Creates a batcher over the given tenant tags.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is empty.
    pub fn new(tenants: &[u32]) -> ContinuousBatcher {
        assert!(!tenants.is_empty(), "batcher needs at least one tenant");
        let mut rotation = tenants.to_vec();
        rotation.sort_unstable();
        rotation.dedup();
        let queues = rotation.iter().map(|&t| (t, VecDeque::new())).collect();
        ContinuousBatcher { queues, rotation, cursor: 0, queued: 0 }
    }

    /// Queues an admitted request behind its tenant's earlier requests.
    ///
    /// # Panics
    ///
    /// Panics if the request's tenant was not registered at construction.
    pub fn enqueue(&mut self, request: Request) {
        let queue = self
            .queues
            .get_mut(&request.tenant)
            .expect("request for a tenant the batcher does not know");
        queue.push_back(request);
        self.queued += 1;
    }

    /// Total queued requests.
    pub fn queued(&self) -> usize {
        self.queued
    }

    /// Queued requests for one tenant (0 for unknown tenants).
    pub fn queued_for(&self, tenant: u32) -> usize {
        self.queues.get(&tenant).map_or(0, VecDeque::len)
    }

    /// Forms the next batch of up to `max` requests: round-robin over
    /// tenants starting at the rotation cursor, one seat per tenant per
    /// lap, until the batch is full or a full lap finds nothing queued.
    pub fn form_batch(&mut self, max: usize) -> Vec<Request> {
        let mut batch = Vec::new();
        if max == 0 || self.queued == 0 {
            return batch;
        }
        let lanes = self.rotation.len();
        let mut idle_lap = 0;
        while batch.len() < max && idle_lap < lanes {
            let tenant = self.rotation[self.cursor];
            self.cursor = (self.cursor + 1) % lanes;
            match self.queues.get_mut(&tenant).and_then(VecDeque::pop_front) {
                Some(req) => {
                    self.queued -= 1;
                    batch.push(req);
                    idle_lap = 0;
                }
                None => idle_lap += 1,
            }
        }
        batch
    }

    /// Like [`ContinuousBatcher::form_batch`], but only tenants for which
    /// `eligible` returns true are offered seats. Used by sharded
    /// dispatch: a shard forming a batch may only seat tenants homed to
    /// it, leaving other tenants' queues untouched for their own shards.
    /// The rotation cursor still advances over every visited slot, so
    /// fairness is preserved across shards.
    pub fn form_batch_where(
        &mut self,
        max: usize,
        mut eligible: impl FnMut(u32) -> bool,
    ) -> Vec<Request> {
        let mut batch = Vec::new();
        if max == 0 || self.queued == 0 {
            return batch;
        }
        let lanes = self.rotation.len();
        let mut idle_lap = 0;
        while batch.len() < max && idle_lap < lanes {
            let tenant = self.rotation[self.cursor];
            self.cursor = (self.cursor + 1) % lanes;
            if !eligible(tenant) {
                idle_lap += 1;
                continue;
            }
            match self.queues.get_mut(&tenant).and_then(VecDeque::pop_front) {
                Some(req) => {
                    self.queued -= 1;
                    batch.push(req);
                    idle_lap = 0;
                }
                None => idle_lap += 1,
            }
        }
        batch
    }

    /// Returns an already-admitted request to the *front* of its tenant's
    /// queue, ahead of everything later. This is the failover path: when
    /// a replica dies mid-round, its in-flight batch is requeued here so
    /// the requests keep their original admission (and arrival stamp) and
    /// are re-dispatched before newer work — exactly-once, never dropped,
    /// never double-counted.
    ///
    /// # Panics
    ///
    /// Panics if the request's tenant was not registered at construction.
    pub fn requeue_front(&mut self, request: Request) {
        let queue = self
            .queues
            .get_mut(&request.tenant)
            .expect("requeue for a tenant the batcher does not know");
        queue.push_front(request);
        self.queued += 1;
    }

    /// Removes and returns every queued request for one tenant (used when
    /// a tenant is quarantined mid-flight: its queued work is shed, not
    /// silently dropped).
    pub fn drain_tenant(&mut self, tenant: u32) -> Vec<Request> {
        match self.queues.get_mut(&tenant) {
            Some(queue) => {
                let drained: Vec<Request> = queue.drain(..).collect();
                self.queued -= drained.len();
                drained
            }
            None => Vec::new(),
        }
    }

    pub(crate) fn encode(&self, enc: &mut Encoder) {
        enc.u64(self.cursor as u64);
        enc.u64(self.queues.len() as u64);
        for (&tenant, queue) in &self.queues {
            enc.u32(tenant);
            enc.u64(queue.len() as u64);
            for req in queue {
                req.encode(enc);
            }
        }
    }

    pub(crate) fn decode(dec: &mut Decoder<'_>) -> Result<ContinuousBatcher, SnapshotError> {
        let cursor = usize::try_from(dec.u64()?)
            .map_err(|_| SnapshotError::Invalid("batcher cursor"))?;
        let mut queues: BTreeMap<u32, VecDeque<Request>> = BTreeMap::new();
        let mut queued = 0usize;
        for _ in 0..dec.seq_len()? {
            let tenant = dec.u32()?;
            let mut queue = VecDeque::new();
            for _ in 0..dec.seq_len()? {
                let req = Request::decode(dec)?;
                if req.tenant != tenant {
                    return Err(SnapshotError::Invalid("queued request under wrong tenant"));
                }
                queue.push_back(req);
            }
            queued += queue.len();
            queues.insert(tenant, queue);
        }
        if queues.is_empty() {
            return Err(SnapshotError::Invalid("batcher has no tenants"));
        }
        let rotation: Vec<u32> = queues.keys().copied().collect();
        if cursor >= rotation.len() {
            return Err(SnapshotError::Invalid("batcher cursor out of range"));
        }
        Ok(ContinuousBatcher { queues, rotation, cursor, queued })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccai_sim::SimTime;

    fn req(id: u64, tenant: u32) -> Request {
        Request {
            id,
            tenant,
            arrived: SimTime::from_picos(id),
            input_tokens: 8,
            output_tokens: 8,
        }
    }

    #[test]
    fn round_robin_gives_each_tenant_one_seat_per_lap() {
        let mut b = ContinuousBatcher::new(&[1, 2, 3]);
        for id in 0..6 {
            b.enqueue(req(id, 1)); // tenant 1 floods
        }
        b.enqueue(req(10, 2));
        b.enqueue(req(11, 3));
        let batch = b.form_batch(3);
        let tenants: Vec<u32> = batch.iter().map(|r| r.tenant).collect();
        assert_eq!(tenants, vec![1, 2, 3], "flooder must not take extra seats in lap one");
    }

    #[test]
    fn flooder_fills_leftover_capacity_only() {
        let mut b = ContinuousBatcher::new(&[1, 2]);
        for id in 0..8 {
            b.enqueue(req(id, 1));
        }
        b.enqueue(req(100, 2));
        let batch = b.form_batch(6);
        assert_eq!(batch.len(), 6);
        let t1 = batch.iter().filter(|r| r.tenant == 1).count();
        assert_eq!(t1, 5, "flooder takes the leftover seats after everyone is served");
        assert_eq!(b.queued(), 3);
    }

    #[test]
    fn cursor_rotates_between_batches() {
        let mut b = ContinuousBatcher::new(&[1, 2]);
        for id in 0..4 {
            b.enqueue(req(id, 1));
            b.enqueue(req(100 + id, 2));
        }
        let first = b.form_batch(1);
        let second = b.form_batch(1);
        assert_eq!(first[0].tenant, 1);
        assert_eq!(second[0].tenant, 2, "next batch starts at the next tenant");
    }

    #[test]
    fn fifo_within_a_tenant() {
        let mut b = ContinuousBatcher::new(&[5]);
        for id in 0..5 {
            b.enqueue(req(id, 5));
        }
        let batch = b.form_batch(5);
        let ids: Vec<u64> = batch.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn drain_tenant_removes_only_that_tenant() {
        let mut b = ContinuousBatcher::new(&[1, 2]);
        b.enqueue(req(0, 1));
        b.enqueue(req(1, 1));
        b.enqueue(req(2, 2));
        let drained = b.drain_tenant(1);
        assert_eq!(drained.len(), 2);
        assert_eq!(b.queued(), 1);
        assert_eq!(b.queued_for(1), 0);
        assert_eq!(b.queued_for(2), 1);
    }

    #[test]
    fn snapshot_round_trips_queues_and_cursor() {
        let mut b = ContinuousBatcher::new(&[1, 2, 3]);
        for id in 0..5 {
            b.enqueue(req(id, 1 + (id as u32 % 3)));
        }
        let _ = b.form_batch(2); // move the cursor off zero
        let mut enc = Encoder::new();
        b.encode(&mut enc);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        let mut back = ContinuousBatcher::decode(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(back.queued(), b.queued());
        // Identical state must form identical batches from here on.
        assert_eq!(back.form_batch(8), b.form_batch(8));
    }

    #[test]
    #[should_panic(expected = "at least one tenant")]
    fn empty_batcher_rejected() {
        let _ = ContinuousBatcher::new(&[]);
    }

    #[test]
    fn filtered_batch_leaves_ineligible_tenants_queued() {
        let mut b = ContinuousBatcher::new(&[1, 2, 3]);
        for id in 0..2 {
            b.enqueue(req(id, 1));
            b.enqueue(req(10 + id, 2));
            b.enqueue(req(20 + id, 3));
        }
        let batch = b.form_batch_where(8, |t| t != 2);
        assert_eq!(batch.len(), 4);
        assert!(batch.iter().all(|r| r.tenant != 2), "filtered tenant keeps its seats");
        assert_eq!(b.queued_for(2), 2);
        assert_eq!(b.queued(), 2);
    }

    #[test]
    fn requeue_front_preserves_fifo_order() {
        let mut b = ContinuousBatcher::new(&[7]);
        for id in 0..4 {
            b.enqueue(req(id, 7));
        }
        let batch = b.form_batch(2);
        assert_eq!(batch.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 1]);
        // Failover: the in-flight batch comes back in reverse so the
        // front of the queue reads 0, 1, 2, 3 again.
        for r in batch.into_iter().rev() {
            b.requeue_front(r);
        }
        let again = b.form_batch(4);
        assert_eq!(again.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }
}
