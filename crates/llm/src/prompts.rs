//! Deterministic prompt generation.
//!
//! The paper adapts prompts from chat datasets; the Fig. 12b KV-cache
//! test uses "input tokens ranging from 4 to 924". This generator
//! produces a reproducible stream of synthetic prompt lengths with a
//! chat-like long-tailed distribution (many short questions, a tail of
//! long pasted contexts) plus deterministic filler token ids — only the
//! lengths affect the measured path.

use ccai_sim::SimRng;
use serde::{Deserialize, Serialize};

/// A generated prompt.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Prompt {
    /// Token ids (synthetic).
    pub tokens: Vec<u32>,
}

impl Prompt {
    /// Prompt length in tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True for the (never-generated) empty prompt.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

/// Deterministic prompt-length generator.
#[derive(Debug, Clone)]
pub struct PromptGenerator {
    rng: SimRng,
    min_tokens: u32,
    max_tokens: u32,
    vocab: u32,
}

impl PromptGenerator {
    /// Generator matching the Fig. 12b setup: lengths in 4–924.
    pub fn sharegpt_like(seed: u64) -> PromptGenerator {
        PromptGenerator { rng: SimRng::seed_from(seed), min_tokens: 4, max_tokens: 924, vocab: 32_000 }
    }

    /// Custom bounds.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or vocab is zero.
    pub fn with_bounds(seed: u64, min_tokens: u32, max_tokens: u32, vocab: u32) -> PromptGenerator {
        assert!(min_tokens > 0 && min_tokens <= max_tokens, "empty length range");
        assert!(vocab > 0, "vocab must be positive");
        PromptGenerator { rng: SimRng::seed_from(seed), min_tokens, max_tokens, vocab }
    }

    /// Draws the next prompt length (long-tailed: squaring a uniform
    /// draw biases toward short prompts).
    pub fn next_len(&mut self) -> u32 {
        let u = self.rng.next_f64();
        let span = (self.max_tokens - self.min_tokens) as f64;
        self.min_tokens + (u * u * span) as u32
    }

    /// Draws a full prompt.
    pub fn next_prompt(&mut self) -> Prompt {
        let len = self.next_len();
        let tokens = (0..len).map(|_| self.rng.next_u32() % self.vocab).collect();
        Prompt { tokens }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = PromptGenerator::sharegpt_like(7);
        let mut b = PromptGenerator::sharegpt_like(7);
        for _ in 0..50 {
            assert_eq!(a.next_prompt(), b.next_prompt());
        }
    }

    #[test]
    fn lengths_respect_bounds() {
        let mut g = PromptGenerator::sharegpt_like(1);
        for _ in 0..2000 {
            let len = g.next_len();
            assert!((4..=924).contains(&len), "length {len}");
        }
    }

    #[test]
    fn distribution_is_long_tailed() {
        let mut g = PromptGenerator::sharegpt_like(2);
        let lens: Vec<u32> = (0..4000).map(|_| g.next_len()).collect();
        let short = lens.iter().filter(|&&l| l < 234).count(); // first quarter of range
        let long = lens.iter().filter(|&&l| l >= 694).count(); // last quarter
        assert!(short > 2 * long, "expected many short prompts: {short} vs {long}");
        // But the tail exists.
        assert!(long > 0);
    }

    #[test]
    fn tokens_stay_in_vocab() {
        let mut g = PromptGenerator::with_bounds(3, 10, 20, 100);
        let p = g.next_prompt();
        assert!(!p.is_empty());
        assert!(p.tokens.iter().all(|&t| t < 100));
    }

    #[test]
    #[should_panic(expected = "empty length range")]
    fn inverted_bounds_rejected() {
        let _ = PromptGenerator::with_bounds(0, 10, 5, 100);
    }
}
