//! Deterministic fleet-level chaos plans.
//!
//! A [`ChaosPlan`] is a time-sorted schedule of replica-scoped failure
//! and recovery events — hard crash, graceful drain, link hot-unplug,
//! hot-plug of a fresh blade, scheduled live migration — injected into a
//! running [`crate::FleetServer`] at its quiesce points. Plans are plain
//! data: the same plan applied to the same seeded run replays
//! bit-identically, which is what lets the chaos battery diff a chaotic
//! run against its chaos-free baseline and against its own replay.
//!
//! Plans can be written by hand (every test that pins a specific recovery
//! path does) or generated from a seed with [`ChaosPlan::seeded`], which
//! tracks a simulated live-set so the schedule stays plausible: it never
//! drains the last replica, hot-plugs under fresh never-reused ids, and
//! migrates tenants onto replicas that exist at that point in the plan.

use ccai_sim::snapshot::{Decoder, Encoder, SnapshotError};
use ccai_sim::{SimDuration, SimRng, SimTime};

/// One replica-scoped chaos event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosEvent {
    /// Hard crash: the replica disappears between two instructions. Its
    /// in-flight batch is requeued at the front of the affected tenants'
    /// queues and its routing entry is removed (HRW minimal remap).
    Crash {
        /// Replica id to kill.
        replica: u32,
    },
    /// Graceful drain: the replica stops accepting new batches, finishes
    /// the round it is serving, and retires.
    Drain {
        /// Replica id to drain.
        replica: u32,
    },
    /// Link hot-unplug mid-DMA: like a crash, but the loss is typed — the
    /// TLPs in flight on the severed link are accounted as losses that
    /// the requeue (the serving layer's retry) absorbs.
    HotUnplug {
        /// Replica id whose link is severed.
        replica: u32,
    },
    /// Hot-plug of a fresh blade under a new stable id. The blade pays a
    /// deterministic bring-up latency (modeling the attested bring-up
    /// chain) before its first batch.
    HotPlug {
        /// Stable id the new replica will carry.
        replica: u32,
    },
    /// Scheduled live migration: move one tenant's home to `to`. The
    /// tenant's token bucket, queue, and quarantine standing are global
    /// (tenant-keyed) state, so they move exactly-once by construction;
    /// the serving layer records the re-homing and the key rotation.
    Migrate {
        /// Tenant tag to migrate.
        tenant: u32,
        /// Destination replica id.
        to: u32,
    },
}

impl ChaosEvent {
    /// Stable lowercase class name, used in telemetry events and counters
    /// (`fleet.chaos.<name>` / `fleet.migrate.*`).
    pub fn class(&self) -> &'static str {
        match self {
            ChaosEvent::Crash { .. } => "crash",
            ChaosEvent::Drain { .. } => "drain",
            ChaosEvent::HotUnplug { .. } => "hot_unplug",
            ChaosEvent::HotPlug { .. } => "hot_plug",
            ChaosEvent::Migrate { .. } => "migrate",
        }
    }

    fn encode(&self, enc: &mut Encoder) {
        match self {
            ChaosEvent::Crash { replica } => {
                enc.u8(0);
                enc.u32(*replica);
                enc.u32(0);
            }
            ChaosEvent::Drain { replica } => {
                enc.u8(1);
                enc.u32(*replica);
                enc.u32(0);
            }
            ChaosEvent::HotUnplug { replica } => {
                enc.u8(2);
                enc.u32(*replica);
                enc.u32(0);
            }
            ChaosEvent::HotPlug { replica } => {
                enc.u8(3);
                enc.u32(*replica);
                enc.u32(0);
            }
            ChaosEvent::Migrate { tenant, to } => {
                enc.u8(4);
                enc.u32(*tenant);
                enc.u32(*to);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<ChaosEvent, SnapshotError> {
        let tag = dec.u8()?;
        let a = dec.u32()?;
        let b = dec.u32()?;
        Ok(match tag {
            0 => ChaosEvent::Crash { replica: a },
            1 => ChaosEvent::Drain { replica: a },
            2 => ChaosEvent::HotUnplug { replica: a },
            3 => ChaosEvent::HotPlug { replica: a },
            4 => ChaosEvent::Migrate { tenant: a, to: b },
            _ => return Err(SnapshotError::Invalid("unknown chaos event tag")),
        })
    }
}

/// A deterministic, time-sorted schedule of [`ChaosEvent`]s.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChaosPlan {
    events: Vec<(SimTime, ChaosEvent)>,
}

impl ChaosPlan {
    /// Builds a plan from explicit `(fire-at, event)` pairs. Events are
    /// stably sorted by fire time, so two events at the same instant keep
    /// their authoring order.
    pub fn new(mut events: Vec<(SimTime, ChaosEvent)>) -> ChaosPlan {
        events.sort_by_key(|(at, _)| *at);
        ChaosPlan { events }
    }

    /// The schedule, earliest first.
    pub fn events(&self) -> &[(SimTime, ChaosEvent)] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Generates a plausible plan from a seed: `count` events spread
    /// uniformly over `horizon`, drawn over the given starting `replicas`
    /// and `tenants`. The generator tracks a simulated live-set so it
    /// never removes the last live replica, only hot-plugs fresh
    /// never-reused ids, and only migrates onto replicas alive at that
    /// point in the schedule. Same seed, same inputs — same plan.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` or `tenants` is empty.
    pub fn seeded(
        seed: u64,
        replicas: &[u32],
        tenants: &[u32],
        horizon: SimDuration,
        count: usize,
    ) -> ChaosPlan {
        assert!(!replicas.is_empty(), "chaos plan needs at least one replica");
        assert!(!tenants.is_empty(), "chaos plan needs at least one tenant");
        let mut rng = SimRng::seed_from(seed ^ 0xC4A0_5EED);
        let mut alive = replicas.to_vec();
        alive.sort_unstable();
        let mut next_id = alive.last().copied().unwrap_or(0) + 1;
        let mut at: Vec<u64> = (0..count)
            .map(|_| rng.next_bounded(horizon.as_picos().max(1)))
            .collect();
        at.sort_unstable();
        let mut events = Vec::with_capacity(count);
        for at in at {
            let roll = rng.next_bounded(100);
            let event = if roll < 20 && alive.len() > 1 {
                let idx = rng.choose_index(alive.len());
                ChaosEvent::Crash { replica: alive.remove(idx) }
            } else if roll < 35 && alive.len() > 1 {
                let idx = rng.choose_index(alive.len());
                ChaosEvent::Drain { replica: alive.remove(idx) }
            } else if roll < 50 && alive.len() > 1 {
                let idx = rng.choose_index(alive.len());
                ChaosEvent::HotUnplug { replica: alive.remove(idx) }
            } else if roll < 75 {
                let replica = next_id;
                next_id += 1;
                alive.push(replica);
                ChaosEvent::HotPlug { replica }
            } else {
                let tenant = tenants[rng.choose_index(tenants.len())];
                let to = alive[rng.choose_index(alive.len())];
                ChaosEvent::Migrate { tenant, to }
            };
            events.push((SimTime::from_picos(at), event));
        }
        ChaosPlan { events }
    }

    pub(crate) fn encode(&self, enc: &mut Encoder) {
        enc.u64(self.events.len() as u64);
        for (at, event) in &self.events {
            enc.u64(at.as_picos());
            event.encode(enc);
        }
    }

    pub(crate) fn decode(dec: &mut Decoder<'_>) -> Result<ChaosPlan, SnapshotError> {
        let mut events = Vec::new();
        let mut last = 0u64;
        for _ in 0..dec.seq_len()? {
            let at = dec.u64()?;
            if at < last {
                return Err(SnapshotError::Invalid("chaos plan not time-sorted"));
            }
            last = at;
            events.push((SimTime::from_picos(at), ChaosEvent::decode(dec)?));
        }
        Ok(ChaosPlan { events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_sorts_by_fire_time_stably() {
        let plan = ChaosPlan::new(vec![
            (SimTime::from_picos(30_000_000), ChaosEvent::Crash { replica: 2 }),
            (SimTime::from_picos(10_000_000), ChaosEvent::HotPlug { replica: 9 }),
            (SimTime::from_picos(30_000_000), ChaosEvent::Drain { replica: 1 }),
        ]);
        let classes: Vec<&str> = plan.events().iter().map(|(_, e)| e.class()).collect();
        assert_eq!(classes, vec!["hot_plug", "crash", "drain"]);
    }

    #[test]
    fn seeded_plans_are_reproducible_and_plausible() {
        let replicas = [0, 1, 2, 3];
        let tenants = [100, 101, 102];
        let horizon = SimDuration::from_millis(50);
        let a = ChaosPlan::seeded(42, &replicas, &tenants, horizon, 32);
        let b = ChaosPlan::seeded(42, &replicas, &tenants, horizon, 32);
        assert_eq!(a, b, "same seed, same plan");
        assert_ne!(a, ChaosPlan::seeded(43, &replicas, &tenants, horizon, 32));
        assert_eq!(a.len(), 32);

        // Replay the live-set: removals only name live replicas, plugs
        // only fresh ids, and the set never empties.
        let mut alive: Vec<u32> = replicas.to_vec();
        let mut seen_ids: Vec<u32> = replicas.to_vec();
        for (_, event) in a.events() {
            match *event {
                ChaosEvent::Crash { replica }
                | ChaosEvent::Drain { replica }
                | ChaosEvent::HotUnplug { replica } => {
                    assert!(alive.contains(&replica), "removal of a dead replica");
                    alive.retain(|&r| r != replica);
                    assert!(!alive.is_empty(), "plan emptied the fleet");
                }
                ChaosEvent::HotPlug { replica } => {
                    assert!(!seen_ids.contains(&replica), "replica id reused");
                    seen_ids.push(replica);
                    alive.push(replica);
                }
                ChaosEvent::Migrate { tenant, to } => {
                    assert!(tenants.contains(&tenant));
                    assert!(alive.contains(&to), "migration onto a dead replica");
                }
            }
        }
    }

    #[test]
    fn plan_round_trips_through_snapshot() {
        let plan =
            ChaosPlan::seeded(7, &[0, 1, 2], &[100, 101], SimDuration::from_millis(10), 12);
        let mut enc = Encoder::new();
        plan.encode(&mut enc);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        let back = ChaosPlan::decode(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(back, plan);
    }
}
