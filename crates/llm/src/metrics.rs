//! The three evaluation metrics of §8.3.
//!
//! Following NVIDIA's LLM benchmarking guidelines (as the paper does):
//! end-to-end latency, tokens per second, and time to first token.

use ccai_sim::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One measured run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// End-to-end latency: total time to answer the request.
    pub e2e: SimDuration,
    /// Time to first token (prefill completion).
    pub ttft: SimDuration,
    /// Total tokens generated across the batch.
    pub total_tokens: u64,
}

impl Metrics {
    /// Output tokens per second.
    pub fn tps(&self) -> f64 {
        self.total_tokens as f64 / self.e2e.as_secs_f64()
    }

    /// Fractional E2E latency overhead of `self` relative to `baseline`
    /// (positive = slower).
    pub fn e2e_overhead_vs(&self, baseline: &Metrics) -> f64 {
        (self.e2e.as_secs_f64() - baseline.e2e.as_secs_f64())
            / baseline.e2e.as_secs_f64()
    }

    /// Fractional TTFT overhead relative to `baseline`.
    pub fn ttft_overhead_vs(&self, baseline: &Metrics) -> f64 {
        (self.ttft.as_secs_f64() - baseline.ttft.as_secs_f64())
            / baseline.ttft.as_secs_f64()
    }

    /// Fractional TPS *loss* relative to `baseline` (positive = fewer
    /// tokens/s).
    pub fn tps_loss_vs(&self, baseline: &Metrics) -> f64 {
        (baseline.tps() - self.tps()) / baseline.tps()
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "E2E={} TTFT={} TPS={:.1}",
            self.e2e,
            self.ttft,
            self.tps()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(e2e_ms: u64, ttft_ms: u64, tokens: u64) -> Metrics {
        Metrics {
            e2e: SimDuration::from_millis(e2e_ms),
            ttft: SimDuration::from_millis(ttft_ms),
            total_tokens: tokens,
        }
    }

    #[test]
    fn tps_is_tokens_over_e2e() {
        let m = metrics(2_000, 100, 500);
        assert!((m.tps() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn overheads_are_signed_fractions() {
        let base = metrics(1_000, 100, 100);
        let slower = metrics(1_050, 110, 100);
        assert!((slower.e2e_overhead_vs(&base) - 0.05).abs() < 1e-12);
        assert!((slower.ttft_overhead_vs(&base) - 0.10).abs() < 1e-12);
        assert!(slower.tps_loss_vs(&base) > 0.0);
        // Symmetric check: faster run has negative overhead.
        assert!(base.e2e_overhead_vs(&slower) < 0.0);
    }

    #[test]
    fn tps_loss_mirrors_e2e_overhead_for_fixed_tokens() {
        // With identical token counts, TPS loss = overhead/(1+overhead).
        let base = metrics(10_000, 100, 1000);
        let ccai = metrics(10_500, 100, 1000);
        let overhead = ccai.e2e_overhead_vs(&base);
        let loss = ccai.tps_loss_vs(&base);
        assert!((loss - overhead / (1.0 + overhead)).abs() < 1e-12);
    }
}
