//! The nine evaluated LLMs (Fig. 8/9 benchmarks).
//!
//! Public architecture parameters plus two kinds of calibrated serving
//! constants:
//!
//! * `decode_efficiency` — the fraction of peak memory bandwidth the
//!   serving stack sustains during token generation (decode is
//!   bandwidth-bound: one full weight sweep per token);
//! * per-step host-interaction volumes (`step_h2d_bytes`,
//!   `step_extra_d2h_bytes`) — the working-set and bookkeeping traffic a
//!   real serving stack exchanges with the host each step. These are the
//!   quantities ccAI's crypto touches, calibrated so the simulated
//!   overheads land in the paper's reported bands (see EXPERIMENTS.md).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Architecture + serving description of one model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LlmSpec {
    name: String,
    /// Parameter count in billions.
    params_b: f64,
    /// Weight quantization in bits (16 = fp16).
    quant_bits: u32,
    hidden: u64,
    vocab: u64,
    layers: u64,
    decode_efficiency: f64,
    step_h2d_bytes: u64,
    step_extra_d2h_bytes: u64,
}

impl LlmSpec {
    /// Builds a custom spec.
    ///
    /// # Panics
    ///
    /// Panics on non-positive sizes or an efficiency outside (0, 1].
    #[allow(clippy::too_many_arguments)]
    pub fn custom(
        name: &str,
        params_b: f64,
        quant_bits: u32,
        hidden: u64,
        vocab: u64,
        layers: u64,
        decode_efficiency: f64,
        step_h2d_bytes: u64,
        step_extra_d2h_bytes: u64,
    ) -> LlmSpec {
        assert!(params_b > 0.0, "parameter count must be positive");
        assert!(matches!(quant_bits, 2 | 4 | 8 | 16), "quantization must be 2/4/8/16 bits");
        assert!(hidden > 0 && vocab > 0 && layers > 0, "architecture sizes must be positive");
        assert!(
            decode_efficiency > 0.0 && decode_efficiency <= 1.0,
            "efficiency must be in (0, 1]"
        );
        LlmSpec {
            name: name.to_string(),
            params_b,
            quant_bits,
            hidden,
            vocab,
            layers,
            decode_efficiency,
            step_h2d_bytes,
            step_extra_d2h_bytes,
        }
    }

    /// OPT-1.3b (fp16) — light-weight benchmark.
    pub fn opt_1_3b() -> LlmSpec {
        Self::custom("OPT-1.3b", 1.3, 16, 2048, 50272, 24, 0.40, 512 << 10, 0)
    }

    /// BLOOM-3b (fp16) — light-weight benchmark.
    pub fn bloom_3b() -> LlmSpec {
        Self::custom("BLOOM-3b", 3.0, 16, 2560, 250880, 30, 0.35, 1 << 20, 64 << 10)
    }

    /// Deepseek-llm-7b (fp16).
    pub fn deepseek_llm_7b() -> LlmSpec {
        Self::custom("Deepseek-llm-7b", 7.0, 16, 4096, 102400, 30, 0.25, 2 << 20, 0)
    }

    /// Llama-2-7b chat (fp16) — the primary Fig. 8 benchmark.
    pub fn llama2_7b() -> LlmSpec {
        Self::custom("Llama2-7b", 7.0, 16, 4096, 32000, 32, 0.25, 2 << 20, 0)
    }

    /// Llama-3-8b (fp16).
    pub fn llama3_8b() -> LlmSpec {
        Self::custom("Llama3-8b", 8.0, 16, 4096, 128256, 32, 0.25, 2 << 20, 0)
    }

    /// Deepseek-r1-32b distill, INT8 quantized.
    pub fn deepseek_r1_32b() -> LlmSpec {
        Self::custom("Deepseek-r1-32b", 32.0, 8, 5120, 152064, 64, 0.11, 8 << 20, 8 << 20)
    }

    /// Deepseek-r1-70b distill, INT4 quantized.
    pub fn deepseek_r1_70b() -> LlmSpec {
        Self::custom("Deepseek-r1-70b", 70.0, 4, 8192, 152064, 80, 0.10, 8 << 20, 4 << 20)
    }

    /// Llama-3-70b, INT4 quantized.
    pub fn llama3_70b() -> LlmSpec {
        Self::custom("Llama3-70b", 70.0, 4, 8192, 128256, 80, 0.10, 8 << 20, 10 << 20)
    }

    /// Babel-83b, INT2 quantized ("relatively small E2E latency").
    pub fn babel_83b() -> LlmSpec {
        Self::custom("Babel-83b", 83.0, 2, 8192, 250680, 80, 0.12, 8 << 20, 3 << 20)
    }

    /// The Fig. 9 sweep, in the paper's order.
    pub fn figure9_set() -> Vec<LlmSpec> {
        vec![
            Self::opt_1_3b(),
            Self::bloom_3b(),
            Self::deepseek_llm_7b(),
            Self::llama2_7b(),
            Self::llama3_8b(),
            Self::deepseek_r1_32b(),
            Self::deepseek_r1_70b(),
            Self::llama3_70b(),
            Self::babel_83b(),
        ]
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Parameters in billions.
    pub fn params_b(&self) -> f64 {
        self.params_b
    }

    /// Quantization width in bits.
    pub fn quant_bits(&self) -> u32 {
        self.quant_bits
    }

    /// Hidden dimension.
    pub fn hidden(&self) -> u64 {
        self.hidden
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> u64 {
        self.vocab
    }

    /// Transformer layer count.
    pub fn layers(&self) -> u64 {
        self.layers
    }

    /// Calibrated decode memory-bandwidth utilization.
    pub fn decode_efficiency(&self) -> f64 {
        self.decode_efficiency
    }

    /// Per-step host→device working-set bytes.
    pub fn step_h2d_bytes(&self) -> u64 {
        self.step_h2d_bytes
    }

    /// Per-step device→host bookkeeping bytes beyond the logits.
    pub fn step_extra_d2h_bytes(&self) -> u64 {
        self.step_extra_d2h_bytes
    }

    /// Total weight bytes at the configured quantization.
    pub fn weights_bytes(&self) -> u64 {
        (self.params_b * 1e9 * self.quant_bits as f64 / 8.0) as u64
    }

    /// Per-step device→host logits bytes for a batch. Serving stacks
    /// truncate the distribution on-device (top-k / sampling shortlists),
    /// so at most 32 k fp16 entries per sequence cross the bus.
    pub fn logits_bytes(&self, batch: u32) -> u64 {
        self.vocab.min(32_000) * 2 * batch as u64
    }

    /// KV-cache bytes per token per sequence (K and V, fp16).
    pub fn kv_bytes_per_token(&self) -> u64 {
        2 * self.layers * self.hidden * 2
    }
}

impl fmt::Display for LlmSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({:.1}B params, INT{}/{:.1} GiB)",
            self.name,
            self.params_b,
            self.quant_bits,
            self.weights_bytes() as f64 / (1u64 << 30) as f64
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure9_set_is_complete_and_ordered_by_weight_class() {
        let set = LlmSpec::figure9_set();
        assert_eq!(set.len(), 9);
        assert_eq!(set[0].name(), "OPT-1.3b");
        assert_eq!(set[8].name(), "Babel-83b");
        // Two light, three medium, four heavy — the paper's grouping.
        assert!(set[..2].iter().all(|m| m.params_b() < 5.0));
        assert!(set[2..5].iter().all(|m| (5.0..10.0).contains(&m.params_b())));
        assert!(set[5..].iter().all(|m| m.params_b() >= 30.0));
    }

    #[test]
    fn weights_respect_quantization() {
        // Babel-83b at INT2 is smaller on disk than Llama2-7b at fp16? No:
        // 83e9 * 2/8 = 20.75 GB vs 7e9 * 2 = 14 GB.
        let babel = LlmSpec::babel_83b();
        let llama = LlmSpec::llama2_7b();
        assert!(babel.weights_bytes() > llama.weights_bytes());
        // But far smaller than it would be at fp16.
        assert!(babel.weights_bytes() < (83.0e9 * 2.0 * 0.2) as u64);
        // The INT4 70b models land near 35 GB.
        let l70 = LlmSpec::llama3_70b();
        assert!((30_000_000_000..40_000_000_000).contains(&l70.weights_bytes()));
    }

    #[test]
    fn logits_scale_with_batch_and_vocab() {
        let m = LlmSpec::llama2_7b();
        assert_eq!(m.logits_bytes(1), 64_000);
        assert_eq!(m.logits_bytes(96), 96 * 64_000);
        // Huge vocabularies are truncated on-device before transfer.
        assert_eq!(LlmSpec::bloom_3b().logits_bytes(1), 64_000);
    }

    #[test]
    fn kv_bytes_are_plausible() {
        // Llama-2-7b: 2 * 32 layers * 4096 * 2B = 512 KiB per token.
        assert_eq!(LlmSpec::llama2_7b().kv_bytes_per_token(), 512 * 1024);
    }

    #[test]
    #[should_panic(expected = "quantization")]
    fn weird_quantization_rejected() {
        let _ = LlmSpec::custom("x", 1.0, 3, 1, 1, 1, 0.5, 0, 0);
    }

    #[test]
    fn display_shows_size() {
        let s = LlmSpec::llama2_7b().to_string();
        assert!(s.contains("Llama2-7b") && s.contains("13.0 GiB"));
    }
}
