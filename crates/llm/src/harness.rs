//! The measurement harness: runs a workload on a device in a protection
//! mode and reports the §8.3 metrics.
//!
//! Time accounting per request:
//!
//! * **TTFT** = framework launch + prefill compute + prompt upload
//!   (+ under ccAI: confidential session setup and the prompt's crypto
//!   costs);
//! * **E2E** = TTFT + `output_tokens` × (step compute + step transfer
//!   (+ step crypto/tag/interaction costs under ccAI));
//! * KV-cache swapping (Fig. 12b) adds per-step swap traffic that both
//!   systems pay on the wire and ccAI additionally encrypts.
//!
//! The confidential session setup models stream registration, policy
//! synchronization, environment-guard configuration and KV-region
//! registration — dozens of control MMIOs plus the attested key-schedule
//! warm-up — calibrated at 4 ms per request (visible mostly in TTFT on
//! short prompts, Fig. 8e).

use crate::kv_cache::KvCache;
use crate::metrics::Metrics;
use crate::workload::InferenceWorkload;
use ccai_core::perf::{CostBreakdown, OptimizationConfig, PerfModel};
use ccai_sim::{Clock, Hop, Severity, SimDuration, Telemetry, TelemetrySnapshot};
use ccai_xpu::XpuSpec;

/// Per-request confidential session setup cost (ccAI only).
pub const SESSION_SETUP: SimDuration = SimDuration::from_millis(4);

/// Protection mode for a measured run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// Unprotected baseline.
    Vanilla,
    /// ccAI with the given optimization switches.
    CcAi(OptimizationConfig),
}

impl Mode {
    /// ccAI with all §5 optimizations (the evaluated configuration).
    #[allow(non_snake_case)]
    pub fn ccai() -> Mode {
        Mode::CcAi(OptimizationConfig::all_on())
    }

    /// The Fig. 11 "No Opt" configuration.
    pub fn ccai_unoptimized() -> Mode {
        Mode::CcAi(OptimizationConfig::none())
    }
}

/// Runs a workload with a fully resident KV cache.
pub fn run(workload: &InferenceWorkload, device: &XpuSpec, mode: Mode) -> Metrics {
    run_with_kv(workload, device, mode, &KvCache::resident())
}

/// Runs a workload under a KV-cache residency constraint (Fig. 12b).
pub fn run_with_kv(
    workload: &InferenceWorkload,
    device: &XpuSpec,
    mode: Mode,
    kv: &KvCache,
) -> Metrics {
    run_instrumented(workload, device, mode, kv, None)
}

/// Runs a workload and exports a per-hop latency breakdown next to the
/// §8.3 metrics: each priced cost component is charged to its hop on a
/// fresh telemetry hub (payload + tag wire time → link, driver/SC MMIO →
/// adaptor staging, Adaptor crypto → adaptor crypt, SC pipeline → SC
/// filter; SC crypt is line-rate pipelined, so its exposed latency is
/// zero). Compute and session setup are accounted as idle time, so the
/// snapshot's `span_total + idle_total` equals the measured E2E exactly.
pub fn run_with_telemetry(
    workload: &InferenceWorkload,
    device: &XpuSpec,
    mode: Mode,
) -> (Metrics, TelemetrySnapshot) {
    run_with_kv_telemetry(workload, device, mode, &KvCache::resident())
}

/// [`run_with_telemetry`] under a KV-cache residency constraint.
pub fn run_with_kv_telemetry(
    workload: &InferenceWorkload,
    device: &XpuSpec,
    mode: Mode,
    kv: &KvCache,
) -> (Metrics, TelemetrySnapshot) {
    let telemetry = Telemetry::new(Telemetry::DEFAULT_CAPACITY);
    let metrics = run_instrumented(workload, device, mode, kv, Some(&telemetry));
    (metrics, telemetry.snapshot())
}

/// Charges one priced burst (scaled by `scale` repetitions) onto the hub.
fn charge_breakdown(
    telemetry: &Telemetry,
    cost: &CostBreakdown,
    chunks: u64,
    protected: bool,
    scale: u64,
) {
    telemetry.advance_span(Hop::Link, None, None, cost.base_transfer * scale);
    telemetry.advance_span(Hop::AdaptorStage, None, None, cost.base_mmio * scale);
    if protected {
        telemetry.advance_span(Hop::AdaptorCrypt, None, None, cost.crypto * scale);
        telemetry.advance_span(Hop::Link, None, None, cost.tag_traffic * scale);
        telemetry.advance_span(Hop::AdaptorStage, None, None, cost.sc_interaction * scale);
        telemetry.advance_span(Hop::ScFilter, None, None, cost.sc_pipeline * scale);
        // The SC's crypt engine runs at line rate, fully overlapped with
        // the wire: the hop shows up in the report with zero exposed
        // latency.
        telemetry.advance_span(Hop::ScCrypt, None, None, SimDuration::ZERO);
        telemetry.counter_add("llm.chunks", chunks * scale);
    }
}

fn run_instrumented(
    workload: &InferenceWorkload,
    device: &XpuSpec,
    mode: Mode,
    kv: &KvCache,
    telemetry: Option<&Telemetry>,
) -> Metrics {
    let mut clock = Clock::new();
    let opts = match mode {
        Mode::Vanilla => OptimizationConfig::all_on(), // unused for pricing base
        Mode::CcAi(opts) => opts,
    };
    let model = PerfModel::new(device.clone(), opts);
    let protected = matches!(mode, Mode::CcAi(_));

    // ---- prefill / TTFT ----
    if protected {
        clock.advance(SESSION_SETUP);
        if let Some(t) = telemetry {
            t.advance_idle(None, SESSION_SETUP);
            t.record(
                Severity::Info,
                "llm.session_setup",
                None,
                None,
                format!("device={}", device.name()),
            );
        }
    }
    clock.advance(workload.prefill_time(device));
    let prefill_profile = workload.prefill_profile();
    let prefill_cost = model.price(&prefill_profile);
    clock.advance(if protected {
        prefill_cost.ccai_total()
    } else {
        prefill_cost.vanilla_total()
    });
    if let Some(t) = telemetry {
        t.advance_idle(None, workload.prefill_time(device));
        charge_breakdown(t, &prefill_cost, prefill_profile.chunks(), protected, 1);
        t.record(
            Severity::Info,
            "llm.prefill",
            None,
            None,
            format!("input_tokens={}", workload.input_tokens),
        );
    }
    let ttft = clock.now().duration_since(ccai_sim::SimTime::ZERO);

    // ---- decode ----
    let step_compute = workload.step_time(device);
    let mut step_profile = workload.step_profile();
    // KV swap traffic rides H2D+D2H evenly.
    let context = workload.input_tokens as u64 + workload.output_tokens as u64 / 2;
    let swap = kv.swap_bytes_per_step(&workload.model, context, workload.batch);
    // Swap traffic streams both ways and pipelines with compute (evict +
    // prefetch); it is never latency-critical result data.
    step_profile.h2d_bytes += swap / 2;
    step_profile.bulk_d2h_bytes += swap / 2;

    let step_cost = model.price(&step_profile);
    let step_total = if protected {
        step_cost.ccai_total()
    } else {
        step_cost.vanilla_total()
    };
    clock.advance((step_compute + step_total) * workload.output_tokens as u64);
    if let Some(t) = telemetry {
        let tokens = u64::from(workload.output_tokens);
        t.advance_idle(None, step_compute * tokens);
        charge_breakdown(t, &step_cost, step_profile.chunks(), protected, tokens);
        t.record(
            Severity::Info,
            "llm.decode",
            None,
            None,
            format!("output_tokens={tokens}"),
        );
    }

    Metrics {
        e2e: clock.now().duration_since(ccai_sim::SimTime::ZERO),
        ttft,
        total_tokens: workload.total_tokens(),
    }
}

/// Convenience: vanilla + ccAI pair for one configuration, as every
/// figure plots.
pub fn run_pair(workload: &InferenceWorkload, device: &XpuSpec) -> (Metrics, Metrics) {
    (
        run(workload, device, Mode::Vanilla),
        run(workload, device, Mode::ccai()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::LlmSpec;

    fn a100() -> XpuSpec {
        XpuSpec::a100()
    }

    #[test]
    fn fig8a_shape_e2e_grows_with_tokens_overhead_stays_low() {
        for tokens in [64u32, 128, 256, 512, 1024, 2048] {
            let w = InferenceWorkload::chat(LlmSpec::llama2_7b(), tokens, 1);
            let (vanilla, ccai) = run_pair(&w, &a100());
            let overhead = ccai.e2e_overhead_vs(&vanilla);
            assert!(
                (0.0..0.02).contains(&overhead),
                "tokens={tokens}: overhead {overhead}"
            );
        }
        // Magnitudes: 2048 tokens ≈ one minute on A100 (Fig. 8a).
        let w = InferenceWorkload::chat(LlmSpec::llama2_7b(), 2048, 1);
        let (vanilla, _) = run_pair(&w, &a100());
        let e2e = vanilla.e2e.as_secs_f64();
        assert!((45.0..75.0).contains(&e2e), "2048-tok E2E {e2e}");
    }

    #[test]
    fn fig8b_shape_batch_overhead_knees_up_then_saturates() {
        let overhead_at = |batch: u32| {
            let w = InferenceWorkload::chat(LlmSpec::llama2_7b(), 128, batch);
            let (vanilla, ccai) = run_pair(&w, &a100());
            ccai.e2e_overhead_vs(&vanilla)
        };
        let at_1 = overhead_at(1);
        let at_12 = overhead_at(12);
        let at_24 = overhead_at(24);
        let at_96 = overhead_at(96);
        // The paper's knee: a big jump 12→24, then saturation.
        assert!(at_12 > at_1, "overhead grows with batch");
        assert!(at_24 > 1.5 * at_12, "knee between 12 and 24: {at_12} -> {at_24}");
        assert!(at_96 < 1.7 * at_24, "saturation after the knee: {at_24} -> {at_96}");
        // Band check: ~0.5% at batch 1, ≤ ~7% at the top.
        assert!((0.001..0.015).contains(&at_1), "batch 1 overhead {at_1}");
        assert!((0.02..0.08).contains(&at_96), "batch 96 overhead {at_96}");
    }

    #[test]
    fn ttft_overhead_shrinks_with_prompt_length() {
        let short = InferenceWorkload::new(LlmSpec::llama2_7b(), 64, 64, 1);
        let long = InferenceWorkload::new(LlmSpec::llama2_7b(), 2048, 64, 1);
        let (v_s, c_s) = run_pair(&short, &a100());
        let (v_l, c_l) = run_pair(&long, &a100());
        let o_short = c_s.ttft_overhead_vs(&v_s);
        let o_long = c_l.ttft_overhead_vs(&v_l);
        assert!(o_short > o_long, "fixed setup amortizes: {o_short} vs {o_long}");
        assert!((0.01..0.08).contains(&o_short), "short-prompt TTFT overhead {o_short}");
    }

    #[test]
    fn unoptimized_is_roughly_an_order_of_magnitude_slower() {
        let w = InferenceWorkload::chat(LlmSpec::llama2_7b(), 128, 1);
        let vanilla = run(&w, &a100(), Mode::Vanilla);
        let ccai = run(&w, &a100(), Mode::ccai());
        let noopt = run(&w, &a100(), Mode::ccai_unoptimized());
        let reduction = (noopt.e2e.as_secs_f64() - ccai.e2e.as_secs_f64())
            / noopt.e2e.as_secs_f64();
        assert!(
            (0.80..0.95).contains(&reduction),
            "Fig. 11 reduction {reduction}"
        );
        assert!(ccai.e2e_overhead_vs(&vanilla) < 0.02);
    }

    #[test]
    fn telemetry_breakdown_accounts_for_full_e2e() {
        let w = InferenceWorkload::chat(LlmSpec::llama2_7b(), 128, 1);
        let (m, snap) = run_with_telemetry(&w, &a100(), Mode::ccai());
        assert_eq!(
            snap.span_total + snap.idle_total,
            m.e2e,
            "per-hop spans + idle time must account for the full E2E"
        );
        let hop_total = |name: &str| {
            snap.hops
                .iter()
                .find(|h| h.hop.as_str() == name)
                .map(|h| (h.count, h.total))
                .unwrap()
        };
        assert!(hop_total("link").1 > SimDuration::ZERO);
        assert!(hop_total("adaptor_stage").1 > SimDuration::ZERO);
        assert!(hop_total("adaptor_crypt").1 > SimDuration::ZERO);
        assert!(hop_total("sc_filter").1 > SimDuration::ZERO);
        assert!(hop_total("sc_crypt").0 > 0, "SC crypt hop reported even when pipelined");
        // Deterministic: the same workload yields the same trace digest.
        let (_, snap2) = run_with_telemetry(&w, &a100(), Mode::ccai());
        assert_eq!(snap.digest, snap2.digest);
    }

    #[test]
    fn tps_is_consistent_with_e2e() {
        let w = InferenceWorkload::chat(LlmSpec::llama2_7b(), 512, 1);
        let m = run(&w, &a100(), Mode::Vanilla);
        let tps = m.tps();
        assert!((25.0..45.0).contains(&tps), "A100 Llama-7b ~35 tok/s, got {tps}");
    }

    #[test]
    fn kv_swapping_slows_both_but_ccai_stays_close() {
        let w = InferenceWorkload::new(LlmSpec::llama2_7b(), 464, 464, 1);
        let resident = run(&w, &a100(), Mode::Vanilla);
        for fraction in [0.8, 0.7, 0.6] {
            let kv = KvCache::limited(fraction);
            let vanilla = run_with_kv(&w, &a100(), Mode::Vanilla, &kv);
            let ccai = run_with_kv(&w, &a100(), Mode::ccai(), &kv);
            let relative = resident.e2e.as_secs_f64() / vanilla.e2e.as_secs_f64();
            assert!(relative < 1.0, "swapping slows vanilla (relative {relative})");
            let added = ccai.e2e_overhead_vs(&vanilla);
            assert!(added < 0.025, "ccAI adds <2.5% under swapping, got {added}");
        }
    }

    #[test]
    fn every_figure9_model_stays_in_band() {
        for model in LlmSpec::figure9_set() {
            let name = model.name().to_string();
            let w = InferenceWorkload::chat(model, 512, 1);
            let (vanilla, ccai) = run_pair(&w, &a100());
            let overhead = ccai.e2e_overhead_vs(&vanilla);
            assert!(
                (0.0..0.06).contains(&overhead),
                "{name}: overhead {overhead}"
            );
        }
    }

    #[test]
    fn every_device_stays_in_band() {
        for device in XpuSpec::evaluation_set() {
            // Light model on the small-memory devices, as in Fig. 10.
            let model = if device.memory_bytes() < (20 << 30) {
                LlmSpec::opt_1_3b()
            } else {
                LlmSpec::llama2_7b()
            };
            let w = InferenceWorkload::chat(model, 512, 1);
            let (vanilla, ccai) = run_pair(&w, &device);
            let overhead = ccai.e2e_overhead_vs(&vanilla);
            assert!(
                (0.0..0.04).contains(&overhead),
                "{}: overhead {overhead}",
                device.name()
            );
        }
    }
}
