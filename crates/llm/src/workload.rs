//! Inference workloads: prefill + decode decomposition.
//!
//! §8.3 fixes the model and varies two inputs: **tokens** (the length of
//! the generation, which drives the decode-step count) and **batch**
//! (questions asked at once). A workload expands into phase timings and
//! the per-phase transfer profiles the security model prices.

use crate::catalog::LlmSpec;
use ccai_core::perf::TransferProfile;
use ccai_sim::SimDuration;
use ccai_xpu::XpuSpec;
use serde::{Deserialize, Serialize};

/// Fixed framework launch overhead before the first prefill kernel.
pub const LAUNCH_OVERHEAD: SimDuration = SimDuration::from_millis(80);

/// Batch size at which decode kernels stop being fully latency-bound and
/// step time begins to grow (the Fig. 8b knee).
pub const BATCH_KNEE: f64 = 24.0;

/// Exponent of step-time growth beyond the knee (sub-linear: bigger
/// batches amortize weight sweeps).
pub const BATCH_EXPONENT: f64 = 0.75;

/// Driver kernel launches per decode step per layer (MMIO doorbells).
pub const LAUNCHES_PER_LAYER: u64 = 3;

/// One inference request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceWorkload {
    /// The model served.
    pub model: LlmSpec,
    /// Input prompt length in tokens.
    pub input_tokens: u32,
    /// Output tokens generated (decode steps).
    pub output_tokens: u32,
    /// Concurrent questions.
    pub batch: u32,
}

impl InferenceWorkload {
    /// A chat workload in the paper's configuration style: the token
    /// parameter drives generation length, with a short prompt.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` or `batch` is zero.
    pub fn chat(model: LlmSpec, tokens: u32, batch: u32) -> InferenceWorkload {
        assert!(tokens > 0, "need at least one token");
        assert!(batch > 0, "need at least one sequence");
        InferenceWorkload {
            model,
            input_tokens: (tokens / 4).max(16),
            output_tokens: tokens,
            batch,
        }
    }

    /// Fully explicit construction.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero.
    pub fn new(
        model: LlmSpec,
        input_tokens: u32,
        output_tokens: u32,
        batch: u32,
    ) -> InferenceWorkload {
        assert!(input_tokens > 0 && output_tokens > 0 && batch > 0);
        InferenceWorkload { model, input_tokens, output_tokens, batch }
    }

    /// Decode step time on `device` for this batch size.
    ///
    /// Decode is memory-bandwidth-bound — each token sweeps the weights
    /// once — so the single-sequence step is `weights / (bw × eff)`;
    /// batches below [`BATCH_KNEE`] ride along for free, larger ones grow
    /// sub-linearly.
    pub fn step_time(&self, device: &XpuSpec) -> SimDuration {
        let sweep = self.model.weights_bytes() as f64
            / (device.memory_bandwidth().bytes_per_sec() * self.model.decode_efficiency());
        let batch_factor = (self.batch as f64 / BATCH_KNEE).max(1.0).powf(BATCH_EXPONENT);
        SimDuration::from_secs_f64(sweep * batch_factor)
    }

    /// Prefill time on `device`: launch overhead plus compute
    /// proportional to prompt length and parameter count.
    pub fn prefill_time(&self, device: &XpuSpec) -> SimDuration {
        // ~2·P FLOPs per token at modest prefill efficiency, normalized to
        // the device's tensor throughput.
        let flops = 2.0 * self.model.params_b() * 1e9 * self.input_tokens as f64
            * self.batch as f64;
        let rate = device.compute_rate().bytes_per_sec() * 0.12;
        LAUNCH_OVERHEAD + SimDuration::from_secs_f64(flops / rate)
    }

    /// The prefill phase's transfer profile (prompt upload).
    pub fn prefill_profile(&self) -> TransferProfile {
        TransferProfile {
            h2d_bytes: self.input_tokens as u64 * self.model.hidden() * 2 * self.batch as u64,
            d2h_bytes: 0,
            bulk_d2h_bytes: 0,
            driver_mmio_writes: self.model.layers() * LAUNCHES_PER_LAYER,
            driver_mmio_reads: 2,
        }
    }

    /// One decode step's transfer profile (working set up, logits +
    /// bookkeeping down).
    pub fn step_profile(&self) -> TransferProfile {
        TransferProfile {
            h2d_bytes: self.model.step_h2d_bytes(),
            d2h_bytes: self.model.logits_bytes(self.batch) + self.model.step_extra_d2h_bytes(),
            bulk_d2h_bytes: 0,
            driver_mmio_writes: self.model.layers() * LAUNCHES_PER_LAYER,
            driver_mmio_reads: 2,
        }
    }

    /// Total generated tokens (`output_tokens × batch`).
    pub fn total_tokens(&self) -> u64 {
        self.output_tokens as u64 * self.batch as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a100() -> XpuSpec {
        XpuSpec::a100()
    }

    #[test]
    fn llama7b_step_time_matches_calibration() {
        // ~28 ms per token on A100 at batch 1 (≈35 tok/s serving).
        let w = InferenceWorkload::chat(LlmSpec::llama2_7b(), 128, 1);
        let step = w.step_time(&a100()).as_secs_f64();
        assert!((0.025..0.032).contains(&step), "step {step}");
    }

    #[test]
    fn step_time_flat_below_knee_then_grows() {
        let base = InferenceWorkload::chat(LlmSpec::llama2_7b(), 128, 1);
        let at_12 = InferenceWorkload::chat(LlmSpec::llama2_7b(), 128, 12);
        let at_96 = InferenceWorkload::chat(LlmSpec::llama2_7b(), 128, 96);
        let t1 = base.step_time(&a100());
        assert_eq!(t1, at_12.step_time(&a100()), "free batching below the knee");
        let t96 = at_96.step_time(&a100());
        let ratio = t96.as_secs_f64() / t1.as_secs_f64();
        assert!(ratio > 1.5 && ratio < 4.0, "sub-linear growth, got {ratio}");
    }

    #[test]
    fn heavier_models_step_slower() {
        let light = InferenceWorkload::chat(LlmSpec::opt_1_3b(), 128, 1);
        let heavy = InferenceWorkload::chat(LlmSpec::deepseek_r1_32b(), 128, 1);
        assert!(heavy.step_time(&a100()) > light.step_time(&a100()) * 5);
    }

    #[test]
    fn slower_devices_step_slower() {
        let w = InferenceWorkload::chat(LlmSpec::opt_1_3b(), 128, 1);
        assert!(w.step_time(&XpuSpec::t4()) > w.step_time(&a100()) * 3);
    }

    #[test]
    fn prefill_grows_with_prompt() {
        let short = InferenceWorkload::new(LlmSpec::llama2_7b(), 64, 1, 1);
        let long = InferenceWorkload::new(LlmSpec::llama2_7b(), 2048, 1, 1);
        let t_short = short.prefill_time(&a100());
        let t_long = long.prefill_time(&a100());
        assert!(t_long > t_short);
        // Calibration: ~0.1 s at 64 tokens, ~0.9 s at 2048 (Fig. 8e).
        assert!((0.08..0.15).contains(&t_short.as_secs_f64()), "{t_short}");
        assert!((0.6..1.2).contains(&t_long.as_secs_f64()), "{t_long}");
    }

    #[test]
    fn profiles_scale_sensibly() {
        let small = InferenceWorkload::chat(LlmSpec::llama2_7b(), 128, 1);
        let big = InferenceWorkload::chat(LlmSpec::llama2_7b(), 128, 96);
        assert!(big.step_profile().d2h_bytes > 50 * small.step_profile().d2h_bytes);
        assert_eq!(
            small.step_profile().driver_mmio_writes,
            32 * LAUNCHES_PER_LAYER
        );
    }

    #[test]
    #[should_panic(expected = "token")]
    fn zero_tokens_rejected() {
        let _ = InferenceWorkload::chat(LlmSpec::llama2_7b(), 0, 1);
    }
}
