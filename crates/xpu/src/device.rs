//! The assembled xPU: a PCIe endpoint wiring spec, memory, registers,
//! MMU, DMA engine, command processor and firmware together.
//!
//! The device exposes two BARs:
//!
//! * **BAR0** — the MMIO register window ([`crate::RegisterFile`], with a
//!   vendor-specific layout);
//! * **BAR1** — a direct aperture into device memory (drivers use it for
//!   small pokes; bulk data rides DMA).
//!
//! Crucially for ccAI's transparency claim, the device (and the driver
//! models in `ccai-tvm`) behave *identically* whether or not a PCIe-SC is
//! interposed in front of them.

use crate::command::{Command, CommandProcessor};
use crate::dma::{DmaDirection, DmaEngine, DmaRequest};
use crate::firmware::Firmware;
use crate::memory::DeviceMemory;
use crate::mmu::Mmu;
use crate::registers::{Reg, RegisterFile, RESET_MAGIC};
use crate::spec::XpuSpec;
use ccai_crypto::{DhGroup, SchnorrKeyPair};
use ccai_pcie::{
    device::handle_config_access, Bdf, ConfigSpace, CplStatus, PcieDevice, Tlp, TlpType,
};
use ccai_sim::{Hop, Severity, Telemetry};
use std::fmt;

/// BAR0 (register window) size.
pub const BAR0_SIZE: u64 = 1 << 20;
/// BAR1 (device-memory aperture) size.
pub const BAR1_SIZE: u64 = 1 << 28; // 256 MiB aperture

/// A simulated xPU endpoint.
pub struct Xpu {
    spec: XpuSpec,
    bdf: Bdf,
    config: ConfigSpace,
    bar0_base: u64,
    bar1_base: u64,
    registers: RegisterFile,
    memory: DeviceMemory,
    mmu: Option<Mmu>,
    dma: DmaEngine,
    commands: CommandProcessor,
    firmware: Firmware,
    interrupts_sent: u64,
    cold_boots: u64,
    telemetry: Option<Telemetry>,
}

impl fmt::Debug for Xpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Xpu")
            .field("spec", &self.spec.name())
            .field("bdf", &self.bdf)
            .field("dma", &self.dma)
            .finish()
    }
}

impl Xpu {
    /// Creates a device of the given spec at `bdf`, with BAR0 at
    /// `bar_base` and BAR1 right after it.
    pub fn new(spec: XpuSpec, bdf: Bdf, bar_base: u64) -> Xpu {
        let vendor_entropy = {
            let mut e = [0u8; 32];
            let name = spec.vendor().as_bytes();
            e[..name.len().min(32)].copy_from_slice(&name[..name.len().min(32)]);
            e
        };
        let vendor_key = SchnorrKeyPair::generate(&DhGroup::sim512(), &vendor_entropy);
        let firmware = Firmware::build_signed(
            spec.firmware_version(),
            format!("{}-firmware-image", spec.name()).into_bytes(),
            &vendor_key,
        );

        assert_eq!(bar_base % BAR1_SIZE, 0, "BAR base must be 256 MiB-aligned");
        let mut config = ConfigSpace::new(vendor_id_of(spec.vendor()), device_id_of(spec.name()));
        // BAR0 occupies the first MiB; BAR1 needs its own size-aligned slot.
        let bar1_base = bar_base + BAR1_SIZE;
        config.set_bar(0, bar_base, BAR0_SIZE);
        config.set_bar(2, bar1_base, BAR1_SIZE);

        let registers = RegisterFile::with_layout(spec.vendor(), 0);
        let memory = DeviceMemory::new(spec.memory_bytes());
        let mmu = spec.has_mmu().then(|| Mmu::new(0x1000));

        Xpu {
            dma: DmaEngine::new(bdf),
            commands: CommandProcessor::new(),
            spec,
            bdf,
            config,
            bar0_base: bar_base,
            bar1_base,
            registers,
            memory,
            mmu,
            firmware,
            interrupts_sent: 0,
            cold_boots: 0,
            telemetry: None,
        }
    }

    /// Reports DMA completions (and errors) into the telemetry hub,
    /// charging device-memory transfer time as a [`Hop::Dma`] span.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = Some(telemetry);
    }

    /// The device spec.
    pub fn spec(&self) -> &XpuSpec {
        &self.spec
    }

    /// BAR0 base address (registers).
    pub fn bar0_base(&self) -> u64 {
        self.bar0_base
    }

    /// BAR1 base address (device-memory aperture).
    pub fn bar1_base(&self) -> u64 {
        self.bar1_base
    }

    /// The full host-address window the device decodes (both BARs) —
    /// the range the fabric should route to its port.
    pub fn address_window(&self) -> std::ops::Range<u64> {
        self.bar0_base..self.bar1_base + BAR1_SIZE
    }

    /// The register layout (drivers need it; the PCIe-SC does not).
    pub fn registers(&self) -> &RegisterFile {
        &self.registers
    }

    /// Device memory, for test assertions.
    pub fn memory(&self) -> &DeviceMemory {
        &self.memory
    }

    /// Mutable device memory, for test setup.
    pub fn memory_mut(&mut self) -> &mut DeviceMemory {
        &mut self.memory
    }

    /// The on-board MMU, if the device has one.
    pub fn mmu(&self) -> Option<&Mmu> {
        self.mmu.as_ref()
    }

    /// Mutable MMU access (driver programming).
    pub fn mmu_mut(&mut self) -> Option<&mut Mmu> {
        self.mmu.as_mut()
    }

    /// The firmware image.
    pub fn firmware(&self) -> &Firmware {
        &self.firmware
    }

    /// Mutable firmware (for tamper tests).
    pub fn firmware_mut(&mut self) -> &mut Firmware {
        &mut self.firmware
    }

    /// Interrupt messages emitted so far.
    pub fn interrupts_sent(&self) -> u64 {
        self.interrupts_sent
    }

    /// Arms chunk-granular DMA recovery (see
    /// [`crate::dma::DmaEngine::set_refetch_limit`]).
    pub fn set_dma_refetch_limit(&mut self, limit: u32) {
        self.dma.set_refetch_limit(limit);
    }

    /// Chunk re-fetches the DMA engine has performed.
    pub fn dma_refetches(&self) -> u64 {
        self.dma.refetches()
    }

    /// Total bytes the DMA engine has requested via read TLPs
    /// (re-fetches counted again).
    pub fn dma_read_bytes_requested(&self) -> u64 {
        self.dma.read_bytes_requested()
    }

    /// Number of cold-boot resets performed.
    pub fn cold_boots(&self) -> u64 {
        self.cold_boots
    }

    /// Performs a cold-boot reset: memory, registers, MMU, TLB, DMA and
    /// command state are all wiped (the xPU environment guard's A-action).
    pub fn cold_boot_reset(&mut self) {
        self.memory.wipe();
        self.registers.wipe();
        if let Some(mmu) = &mut self.mmu {
            mmu.wipe();
        }
        self.dma.wipe();
        self.commands.wipe();
        self.cold_boots += 1;
    }

    fn register_write(&mut self, reg: Reg, value: u64) {
        self.registers.write(reg, value);
        match reg {
            Reg::DmaCtrl => {
                let direction = match value {
                    0 => {
                        // Abort/reset: recover an engine stuck mid-transfer
                        // after packet loss, without a full cold boot.
                        self.dma.abort();
                        self.sync_dma_status();
                        return;
                    }
                    1 => DmaDirection::HostToDevice,
                    2 => DmaDirection::DeviceToHost,
                    _ => return,
                };
                // A duplicated doorbell delivery must not restart (or
                // panic) an engine already working on this transfer; the
                // register itself was updated above, so driver read-back
                // verification still sees the value it wrote.
                if self.dma.status() == crate::dma::DmaStatus::Busy {
                    return;
                }
                let request = DmaRequest {
                    direction,
                    host_addr: match direction {
                        DmaDirection::HostToDevice => self.registers.read(Reg::DmaSrc),
                        DmaDirection::DeviceToHost => self.registers.read(Reg::DmaDst),
                    },
                    device_addr: match direction {
                        DmaDirection::HostToDevice => self.registers.read(Reg::DmaDst),
                        DmaDirection::DeviceToHost => self.registers.read(Reg::DmaSrc),
                    },
                    len: self.registers.read(Reg::DmaLen),
                };
                if request.len == 0 {
                    return;
                }
                self.dma.start(request, &mut self.memory);
                self.sync_dma_status();
            }
            Reg::CmdDoorbell => {
                let command = match value {
                    1 => Command::LoadModel {
                        addr: self.registers.read(Reg::CmdArg0),
                        len: self.registers.read(Reg::CmdArg1),
                    },
                    2 => Command::RunInference {
                        input: self.registers.read(Reg::CmdArg0),
                        len: self.registers.read(Reg::CmdArg1),
                        output: self.registers.read(Reg::CmdArg2),
                    },
                    _ => return,
                };
                let status = self.commands.execute(command, &mut self.memory);
                self.registers.write(Reg::CmdStatus, status.to_code());
                self.raise_interrupt();
            }
            Reg::ResetCtrl
                if value == RESET_MAGIC => {
                    self.cold_boot_reset();
                }
            Reg::PageTableBase => {
                if let Some(mmu) = &mut self.mmu {
                    mmu.set_table_base(value);
                }
            }
            _ => {}
        }
    }

    fn sync_dma_status(&mut self) {
        let prev_code = self.registers.read(Reg::DmaStatus);
        let status = self.dma.status();
        self.registers.write(Reg::DmaStatus, status.to_code());
        if matches!(
            status,
            crate::dma::DmaStatus::Done | crate::dma::DmaStatus::Error
        ) {
            self.raise_interrupt();
            // Telemetry only on the edge, not on every re-poll of a
            // finished engine.
            if prev_code != status.to_code() {
                if let Some(telemetry) = &self.telemetry {
                    let bytes = self.dma.bytes_moved();
                    let tenant = Some(u32::from(self.bdf.to_u16()));
                    telemetry.advance_span(
                        Hop::Dma,
                        tenant,
                        None,
                        self.spec.memory_bandwidth().transfer_time(bytes),
                    );
                    match status {
                        crate::dma::DmaStatus::Done => {
                            telemetry.record(
                                Severity::Info,
                                "xpu.dma.complete",
                                tenant,
                                None,
                                format!("bytes={bytes}"),
                            );
                            telemetry.counter_add("xpu.dma.completions", 1);
                        }
                        _ => {
                            telemetry.record(
                                Severity::Warn,
                                "xpu.dma.error",
                                tenant,
                                None,
                                format!("bytes={bytes}"),
                            );
                            telemetry.counter_add("xpu.dma.errors", 1);
                        }
                    }
                }
            }
        }
    }

    fn raise_interrupt(&mut self) {
        self.interrupts_sent += 1;
        self.registers
            .write(Reg::IntStatus, self.registers.read(Reg::IntStatus) | 1);
    }
}

fn vendor_id_of(vendor: &str) -> u16 {
    match vendor {
        "NVIDIA" => 0x10DE,
        "Tenstorrent" => 0x1E52,
        "Enflame" => 0x1EA0,
        other => 0x1000 + other.len() as u16,
    }
}

fn device_id_of(name: &str) -> u16 {
    name.bytes().fold(0u16, |acc, b| acc.wrapping_mul(31).wrapping_add(b as u16))
}

impl PcieDevice for Xpu {
    fn bdf(&self) -> Bdf {
        self.bdf
    }

    fn config_space(&self) -> &ConfigSpace {
        &self.config
    }

    fn config_space_mut(&mut self) -> &mut ConfigSpace {
        &mut self.config
    }

    fn handle(&mut self, tlp: Tlp) -> Vec<Tlp> {
        if let Some(cpl) = handle_config_access(self, &tlp) {
            return vec![cpl];
        }
        let header = *tlp.header();
        let Some(addr) = header.address() else {
            return Vec::new(); // messages etc. are absorbed
        };

        // BAR0: register window.
        if (self.bar0_base..self.bar0_base + BAR0_SIZE).contains(&addr) {
            let offset = addr - self.bar0_base;
            match header.tlp_type() {
                TlpType::MemWrite => {
                    if let Some(reg) = self.registers.reg_at(offset) {
                        let mut bytes = [0u8; 8];
                        let payload = tlp.payload();
                        bytes[..payload.len().min(8)]
                            .copy_from_slice(&payload[..payload.len().min(8)]);
                        self.register_write(reg, u64::from_le_bytes(bytes));
                    }
                    Vec::new()
                }
                TlpType::MemRead => {
                    let value = self
                        .registers
                        .reg_at(offset)
                        .map(|reg| self.registers.read(reg))
                        .unwrap_or(0);
                    let len = (header.payload_len() as usize).min(8);
                    vec![Tlp::completion_with_data(
                        self.bdf,
                        header.requester(),
                        header.tag(),
                        value.to_le_bytes()[..len].to_vec(),
                    )]
                }
                _ => vec![Tlp::completion(
                    self.bdf,
                    header.requester(),
                    header.tag(),
                    CplStatus::UnsupportedRequest,
                )],
            }
        } else if (self.bar1_base..self.bar1_base + BAR1_SIZE).contains(&addr) {
            // BAR1: device-memory aperture.
            let offset = addr - self.bar1_base;
            match header.tlp_type() {
                TlpType::MemWrite => {
                    let _ = self.memory.write(offset, tlp.payload());
                    Vec::new()
                }
                TlpType::MemRead => match self.memory.read(offset, header.payload_len() as u64)
                {
                    Ok(data) => vec![Tlp::completion_with_data(
                        self.bdf,
                        header.requester(),
                        header.tag(),
                        data,
                    )],
                    Err(_) => vec![Tlp::completion(
                        self.bdf,
                        header.requester(),
                        header.tag(),
                        CplStatus::UnsupportedRequest,
                    )],
                },
                _ => Vec::new(),
            }
        } else if header.tlp_type().is_read() {
            vec![Tlp::completion(
                self.bdf,
                header.requester(),
                header.tag(),
                CplStatus::UnsupportedRequest,
            )]
        } else {
            Vec::new()
        }
    }

    fn poll_outbound(&mut self) -> Vec<Tlp> {
        if self.dma.recover_stalled() {
            self.sync_dma_status();
        }
        let mut out = self.dma.poll_outbound();
        // Surface a fresh interrupt as a message TLP.
        if self.registers.read(Reg::IntStatus) & 1 != 0 {
            self.registers.write(Reg::IntStatus, 0);
            out.push(Tlp::message(self.bdf, 0x20));
        }
        out
    }

    fn deliver_completion(&mut self, tlp: Tlp) {
        self.dma.deliver_completion(tlp, &mut self.memory);
        self.sync_dma_status();
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

impl Xpu {
    /// Serializes all mutable device state. Identity (spec, BDF, BAR
    /// bases, config space, firmware, register layout) is a pure function
    /// of the construction parameters and is rebuilt, not captured; the
    /// spec name is included only to refuse restoring onto the wrong part.
    pub fn encode_snapshot(&self, enc: &mut ccai_sim::snapshot::Encoder) {
        enc.str(self.spec.name());
        self.registers.encode_snapshot(enc);
        self.memory.encode_snapshot(enc);
        enc.bool(self.mmu.is_some());
        if let Some(mmu) = &self.mmu {
            mmu.encode_snapshot(enc);
        }
        self.dma.encode_snapshot(enc);
        self.commands.encode_snapshot(enc);
        enc.u64(self.interrupts_sent);
        enc.u64(self.cold_boots);
    }

    /// Restores device state captured by [`Xpu::encode_snapshot`] onto a
    /// freshly built device of the *same* spec.
    ///
    /// # Errors
    ///
    /// Any [`ccai_sim::snapshot::SnapshotError`] on malformed input or a
    /// spec/MMU mismatch.
    pub fn restore_snapshot(
        &mut self,
        dec: &mut ccai_sim::snapshot::Decoder<'_>,
    ) -> Result<(), ccai_sim::snapshot::SnapshotError> {
        use ccai_sim::snapshot::SnapshotError;
        if dec.str()? != self.spec.name() {
            return Err(SnapshotError::Invalid("xPU spec mismatch"));
        }
        self.registers.restore_snapshot(dec)?;
        self.memory.restore_snapshot(dec)?;
        let has_mmu = dec.bool()?;
        if has_mmu != self.mmu.is_some() {
            return Err(SnapshotError::Invalid("MMU presence mismatch"));
        }
        if let Some(mmu) = &mut self.mmu {
            mmu.restore_snapshot(dec)?;
        }
        self.dma.restore_snapshot(dec)?;
        self.commands.restore_snapshot(dec)?;
        self.interrupts_sent = dec.u64()?;
        self.cold_boots = dec.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccai_pcie::{Fabric, PortId, VecHostMemory};

    fn host() -> Bdf {
        Bdf::new(0, 0, 0)
    }

    fn setup() -> (Fabric, VecHostMemory, RegisterFile, u64, u64) {
        let xpu = Xpu::new(XpuSpec::a100(), Bdf::new(0x17, 0, 0), 0x8000_0000);
        let regs = xpu.registers().clone();
        let bar0 = xpu.bar0_base();
        let bar1 = xpu.bar1_base();
        let window = xpu.address_window();
        let mut fabric = Fabric::new();
        fabric.attach(PortId(0), Box::new(xpu));
        fabric.map_range(window, PortId(0));
        (fabric, VecHostMemory::new(1 << 20), regs, bar0, bar1)
    }

    fn write_reg(fabric: &mut Fabric, regs: &RegisterFile, bar0: u64, reg: Reg, value: u64) {
        fabric.host_request(Tlp::memory_write(
            host(),
            bar0 + regs.offset(reg),
            value.to_le_bytes().to_vec(),
        ));
    }

    fn read_reg(fabric: &mut Fabric, regs: &RegisterFile, bar0: u64, reg: Reg) -> u64 {
        let replies =
            fabric.host_request(Tlp::memory_read(host(), bar0 + regs.offset(reg), 8, 0));
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(replies[0].payload());
        u64::from_le_bytes(bytes)
    }

    #[test]
    fn mmio_register_access_through_fabric() {
        let (mut fabric, _mem, regs, bar0, _) = setup();
        write_reg(&mut fabric, &regs, bar0, Reg::DmaLen, 12345);
        assert_eq!(read_reg(&mut fabric, &regs, bar0, Reg::DmaLen), 12345);
    }

    #[test]
    fn bar1_aperture_reaches_device_memory() {
        let (mut fabric, _mem, _regs, _bar0, bar1) = setup();
        fabric.host_request(Tlp::memory_write(host(), bar1 + 0x100, vec![1, 2, 3]));
        let replies = fabric.host_request(Tlp::memory_read(host(), bar1 + 0x100, 3, 0));
        assert_eq!(replies[0].payload(), &[1, 2, 3]);
    }

    #[test]
    fn h2d_dma_through_fabric() {
        let (mut fabric, mut mem, regs, bar0, bar1) = setup();
        // Host buffer at 0x4000.
        mem.as_mut_slice()[0x4000..0x4000 + 8192].fill(0x5A);

        write_reg(&mut fabric, &regs, bar0, Reg::DmaSrc, 0x4000);
        write_reg(&mut fabric, &regs, bar0, Reg::DmaDst, 0x0); // device addr
        write_reg(&mut fabric, &regs, bar0, Reg::DmaLen, 8192);
        write_reg(&mut fabric, &regs, bar0, Reg::DmaCtrl, 1); // H2D

        // Pump until quiescent.
        while fabric.pump(&mut mem) > 0 {}

        assert_eq!(read_reg(&mut fabric, &regs, bar0, Reg::DmaStatus), 2, "done");
        let replies = fabric.host_request(Tlp::memory_read(host(), bar1, 16, 0));
        assert_eq!(replies[0].payload(), &[0x5A; 16]);
    }

    #[test]
    fn d2h_dma_through_fabric() {
        let (mut fabric, mut mem, regs, bar0, bar1) = setup();
        fabric.host_request(Tlp::memory_write(host(), bar1, vec![0xA7; 4096]));
        fabric.host_request(Tlp::memory_write(host(), bar1 + 4096, vec![0xA7; 5000 - 4096]));

        write_reg(&mut fabric, &regs, bar0, Reg::DmaSrc, 0x0); // device addr
        write_reg(&mut fabric, &regs, bar0, Reg::DmaDst, 0x2000); // host addr
        write_reg(&mut fabric, &regs, bar0, Reg::DmaLen, 5000);
        write_reg(&mut fabric, &regs, bar0, Reg::DmaCtrl, 2); // D2H
        while fabric.pump(&mut mem) > 0 {}

        assert_eq!(&mem.as_slice()[0x2000..0x2000 + 5000], vec![0xA7; 5000].as_slice());
    }

    #[test]
    fn command_processor_via_doorbell() {
        let (mut fabric, mut mem, regs, bar0, bar1) = setup();
        fabric.host_request(Tlp::memory_write(host(), bar1 + 0x1000, b"weights!".to_vec()));
        fabric.host_request(Tlp::memory_write(host(), bar1 + 0x2000, b"input".to_vec()));

        write_reg(&mut fabric, &regs, bar0, Reg::CmdArg0, 0x1000);
        write_reg(&mut fabric, &regs, bar0, Reg::CmdArg1, 8);
        write_reg(&mut fabric, &regs, bar0, Reg::CmdDoorbell, 1); // LoadModel
        assert_eq!(read_reg(&mut fabric, &regs, bar0, Reg::CmdStatus), 1);

        write_reg(&mut fabric, &regs, bar0, Reg::CmdArg0, 0x2000);
        write_reg(&mut fabric, &regs, bar0, Reg::CmdArg1, 5);
        write_reg(&mut fabric, &regs, bar0, Reg::CmdArg2, 0x3000);
        write_reg(&mut fabric, &regs, bar0, Reg::CmdDoorbell, 2); // RunInference
        assert_eq!(read_reg(&mut fabric, &regs, bar0, Reg::CmdStatus), 1);

        let replies = fabric.host_request(Tlp::memory_read(host(), bar1 + 0x3000, 32, 0));
        let expected = CommandProcessor::surrogate_inference(b"weights!", b"input");
        assert_eq!(replies[0].payload(), expected);

        // Interrupts surfaced as messages.
        while fabric.pump(&mut mem) > 0 {}
        assert!(!fabric.drain_host_inbox().is_empty());
    }

    #[test]
    fn cold_boot_reset_via_register() {
        let (mut fabric, _mem, regs, bar0, bar1) = setup();
        fabric.host_request(Tlp::memory_write(host(), bar1, vec![0xEE; 64]));
        write_reg(&mut fabric, &regs, bar0, Reg::ResetCtrl, RESET_MAGIC);
        let replies = fabric.host_request(Tlp::memory_read(host(), bar1, 64, 0));
        assert_eq!(replies[0].payload(), &[0u8; 64], "memory wiped");
    }

    #[test]
    fn wrong_reset_magic_ignored() {
        let (mut fabric, _mem, regs, bar0, bar1) = setup();
        fabric.host_request(Tlp::memory_write(host(), bar1, vec![0xEE; 4]));
        write_reg(&mut fabric, &regs, bar0, Reg::ResetCtrl, 0x1234);
        let replies = fabric.host_request(Tlp::memory_read(host(), bar1, 4, 0));
        assert_eq!(replies[0].payload(), &[0xEE; 4]);
    }

    #[test]
    fn firmware_ships_verified() {
        let xpu = Xpu::new(XpuSpec::t4(), Bdf::new(1, 0, 0), 0x8000_0000);
        assert!(xpu.firmware().verify());
        assert_eq!(xpu.firmware().version(), "90.04.38.00.03");
    }

    #[test]
    fn mmu_presence_follows_spec() {
        let gpu = Xpu::new(XpuSpec::a100(), Bdf::new(1, 0, 0), 0x8000_0000);
        let npu = Xpu::new(XpuSpec::tenstorrent_n150d(), Bdf::new(2, 0, 0), 0x9000_0000);
        assert!(gpu.mmu().is_some());
        assert!(npu.mmu().is_none());
    }

    #[test]
    fn page_table_base_register_reaches_mmu() {
        let (mut fabric, _mem, regs, bar0, _) = setup();
        write_reg(&mut fabric, &regs, bar0, Reg::PageTableBase, 0xAB00_0000);
        // Reach into the device to confirm.
        let dev = fabric.device(PortId(0)).unwrap();
        let _ = dev; // device trait has no downcast; assert via register readback
        assert_eq!(read_reg(&mut fabric, &regs, bar0, Reg::PageTableBase), 0xAB00_0000);
    }
}
