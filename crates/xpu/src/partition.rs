//! MIG-style device partitioning (§9 "PCIe-SC for multiple xPUs and
//! users").
//!
//! "The PCIe-SC distinguishes each xPU, or virtual functions on a xPU,
//! by unique PCIe identifiers (e.g., Bus/Device/Function ID)." This
//! module models a multi-instance accelerator: one physical endpoint
//! exposing N virtual functions, each with its own function number,
//! register window, DMA engine, command processor, and hard memory
//! quota — so a multi-tenant security controller can key policy and
//! crypto per VF.
//!
//! Drivers bind to a VF exactly as to a whole device: same register
//! layout, same programming model, a per-VF BAR window slice.

use crate::command::{Command, CommandProcessor};
use crate::dma::{DmaDirection, DmaEngine, DmaRequest};
use crate::memory::DeviceMemory;
use crate::registers::{Reg, RegisterFile, RESET_MAGIC};
use crate::spec::XpuSpec;
use ccai_pcie::{
    device::handle_config_access, Bdf, ConfigSpace, CplStatus, PcieDevice, Tlp, TlpType,
};
use std::fmt;

/// Per-VF register window stride within BAR0.
pub const VF_BAR0_STRIDE: u64 = 0x1_0000;

/// Per-VF aperture size within BAR1.
pub const VF_BAR1_STRIDE: u64 = 1 << 24; // 16 MiB per instance

struct VfState {
    bdf: Bdf,
    registers: RegisterFile,
    memory: DeviceMemory,
    dma: DmaEngine,
    commands: CommandProcessor,
    interrupt_pending: bool,
}

impl VfState {
    fn register_write(&mut self, reg: Reg, value: u64) {
        self.registers.write(reg, value);
        match reg {
            Reg::DmaCtrl => {
                let direction = match value {
                    1 => DmaDirection::HostToDevice,
                    2 => DmaDirection::DeviceToHost,
                    _ => return,
                };
                let request = DmaRequest {
                    direction,
                    host_addr: match direction {
                        DmaDirection::HostToDevice => self.registers.read(Reg::DmaSrc),
                        DmaDirection::DeviceToHost => self.registers.read(Reg::DmaDst),
                    },
                    device_addr: match direction {
                        DmaDirection::HostToDevice => self.registers.read(Reg::DmaDst),
                        DmaDirection::DeviceToHost => self.registers.read(Reg::DmaSrc),
                    },
                    len: self.registers.read(Reg::DmaLen),
                };
                if request.len == 0 {
                    return;
                }
                self.dma.start(request, &mut self.memory);
                self.sync_dma_status();
            }
            Reg::CmdDoorbell => {
                let command = match value {
                    1 => Command::LoadModel {
                        addr: self.registers.read(Reg::CmdArg0),
                        len: self.registers.read(Reg::CmdArg1),
                    },
                    2 => Command::RunInference {
                        input: self.registers.read(Reg::CmdArg0),
                        len: self.registers.read(Reg::CmdArg1),
                        output: self.registers.read(Reg::CmdArg2),
                    },
                    _ => return,
                };
                let status = self.commands.execute(command, &mut self.memory);
                self.registers.write(Reg::CmdStatus, status.to_code());
                self.interrupt_pending = true;
            }
            Reg::ResetCtrl
                if value == RESET_MAGIC => {
                    // A VF reset wipes ONLY this instance's slice — the
                    // isolation property MIG provides.
                    self.memory.wipe();
                    self.registers.wipe();
                    self.dma.wipe();
                    self.commands.wipe();
                }
            _ => {}
        }
    }

    fn sync_dma_status(&mut self) {
        self.registers
            .write(Reg::DmaStatus, self.dma.status().to_code());
        if matches!(
            self.dma.status(),
            crate::dma::DmaStatus::Done | crate::dma::DmaStatus::Error
        ) {
            self.interrupt_pending = true;
        }
    }
}

/// A multi-instance xPU: one endpoint, N virtual functions.
pub struct PartitionedXpu {
    spec: XpuSpec,
    pf_bdf: Bdf,
    config: ConfigSpace,
    bar0_base: u64,
    bar1_base: u64,
    vfs: Vec<VfState>,
}

impl fmt::Debug for PartitionedXpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PartitionedXpu")
            .field("spec", &self.spec.name())
            .field("vfs", &self.vfs.len())
            .finish()
    }
}

impl PartitionedXpu {
    /// Creates a device at `pf_bdf` (function 0) with `vf_count` virtual
    /// functions (functions 1..=vf_count), each with an equal memory
    /// quota.
    ///
    /// # Panics
    ///
    /// Panics if `vf_count` is 0 or greater than 7 (the function-number
    /// width), or if `bar_base` is not 256 MiB-aligned.
    pub fn new(spec: XpuSpec, pf_bdf: Bdf, bar_base: u64, vf_count: u8) -> PartitionedXpu {
        assert!((1..=7).contains(&vf_count), "1-7 virtual functions");
        assert_eq!(pf_bdf.function(), 0, "PF must be function 0");
        assert_eq!(bar_base % crate::device::BAR1_SIZE, 0, "BAR base alignment");
        let mut config = ConfigSpace::new(0x10DE, 0x20B7);
        let bar1_base = bar_base + crate::device::BAR1_SIZE;
        config.set_bar(0, bar_base, crate::device::BAR0_SIZE);
        config.set_bar(2, bar1_base, crate::device::BAR1_SIZE);

        let quota = spec.memory_bytes() / vf_count as u64;
        let vfs = (1..=vf_count)
            .map(|i| {
                let bdf = Bdf::new(pf_bdf.bus(), pf_bdf.device(), i);
                VfState {
                    bdf,
                    registers: RegisterFile::with_layout(spec.vendor(), 0),
                    memory: DeviceMemory::new(quota),
                    dma: DmaEngine::new(bdf),
                    commands: CommandProcessor::new(),
                    interrupt_pending: false,
                }
            })
            .collect();

        PartitionedXpu { spec, pf_bdf, config, bar0_base: bar_base, bar1_base, vfs }
    }

    /// The device spec.
    pub fn spec(&self) -> &XpuSpec {
        &self.spec
    }

    /// Number of virtual functions.
    pub fn vf_count(&self) -> usize {
        self.vfs.len()
    }

    /// The BDF of VF `index` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn vf_bdf(&self, index: usize) -> Bdf {
        self.vfs[index].bdf
    }

    /// Base of VF `index`'s register window within BAR0.
    pub fn vf_bar0(&self, index: usize) -> u64 {
        self.bar0_base + index as u64 * VF_BAR0_STRIDE
    }

    /// Base of VF `index`'s aperture window within BAR1.
    pub fn vf_bar1(&self, index: usize) -> u64 {
        self.bar1_base + index as u64 * VF_BAR1_STRIDE
    }

    /// The VF's register layout (all VFs share the vendor layout).
    pub fn vf_registers(&self, index: usize) -> &RegisterFile {
        &self.vfs[index].registers
    }

    /// The full host-address window the device decodes.
    pub fn address_window(&self) -> std::ops::Range<u64> {
        self.bar0_base..self.bar1_base + crate::device::BAR1_SIZE
    }

    /// Direct access to a VF's memory slice, for assertions.
    pub fn vf_memory(&self, index: usize) -> &DeviceMemory {
        &self.vfs[index].memory
    }

    fn vf_for_bar0(&mut self, offset: u64) -> Option<(&mut VfState, u64)> {
        let index = (offset / VF_BAR0_STRIDE) as usize;
        let within = offset % VF_BAR0_STRIDE;
        self.vfs.get_mut(index).map(|vf| (vf, within))
    }

    fn vf_for_bar1(&mut self, offset: u64) -> Option<(&mut VfState, u64)> {
        let index = (offset / VF_BAR1_STRIDE) as usize;
        let within = offset % VF_BAR1_STRIDE;
        self.vfs.get_mut(index).map(|vf| (vf, within))
    }
}

impl PcieDevice for PartitionedXpu {
    fn bdf(&self) -> Bdf {
        self.pf_bdf
    }

    fn config_space(&self) -> &ConfigSpace {
        &self.config
    }

    fn config_space_mut(&mut self) -> &mut ConfigSpace {
        &mut self.config
    }

    fn handle(&mut self, tlp: Tlp) -> Vec<Tlp> {
        if let Some(cpl) = handle_config_access(self, &tlp) {
            return vec![cpl];
        }
        let header = *tlp.header();
        let Some(addr) = header.address() else {
            return Vec::new();
        };
        let pf_bdf = self.pf_bdf;

        if (self.bar0_base..self.bar0_base + crate::device::BAR0_SIZE).contains(&addr) {
            let offset = addr - self.bar0_base;
            let Some((vf, within)) = self.vf_for_bar0(offset) else {
                return Vec::new();
            };
            match header.tlp_type() {
                TlpType::MemWrite => {
                    if let Some(reg) = vf.registers.reg_at(within) {
                        let mut bytes = [0u8; 8];
                        let payload = tlp.payload();
                        let n = payload.len().min(8);
                        bytes[..n].copy_from_slice(&payload[..n]);
                        vf.register_write(reg, u64::from_le_bytes(bytes));
                    }
                    Vec::new()
                }
                TlpType::MemRead => {
                    let value = vf
                        .registers
                        .reg_at(within)
                        .map(|reg| vf.registers.read(reg))
                        .unwrap_or(0);
                    let len = (header.payload_len() as usize).min(8);
                    vec![Tlp::completion_with_data(
                        vf.bdf,
                        header.requester(),
                        header.tag(),
                        value.to_le_bytes()[..len].to_vec(),
                    )]
                }
                _ => vec![Tlp::completion(
                    pf_bdf,
                    header.requester(),
                    header.tag(),
                    CplStatus::UnsupportedRequest,
                )],
            }
        } else if (self.bar1_base..self.bar1_base + crate::device::BAR1_SIZE).contains(&addr) {
            let offset = addr - self.bar1_base;
            let Some((vf, within)) = self.vf_for_bar1(offset) else {
                return Vec::new();
            };
            match header.tlp_type() {
                TlpType::MemWrite => {
                    let _ = vf.memory.write(within, tlp.payload());
                    Vec::new()
                }
                TlpType::MemRead => match vf.memory.read(within, header.payload_len() as u64) {
                    Ok(data) => vec![Tlp::completion_with_data(
                        vf.bdf,
                        header.requester(),
                        header.tag(),
                        data,
                    )],
                    Err(_) => vec![Tlp::completion(
                        vf.bdf,
                        header.requester(),
                        header.tag(),
                        CplStatus::UnsupportedRequest,
                    )],
                },
                _ => Vec::new(),
            }
        } else if header.tlp_type().is_read() {
            vec![Tlp::completion(
                pf_bdf,
                header.requester(),
                header.tag(),
                CplStatus::UnsupportedRequest,
            )]
        } else {
            Vec::new()
        }
    }

    fn poll_outbound(&mut self) -> Vec<Tlp> {
        let mut out = Vec::new();
        for vf in &mut self.vfs {
            out.extend(vf.dma.poll_outbound());
            if vf.interrupt_pending {
                vf.interrupt_pending = false;
                out.push(Tlp::message(vf.bdf, 0x20));
            }
        }
        out
    }

    fn deliver_completion(&mut self, tlp: Tlp) {
        // Route by the original requester: each VF's DMA engine issued
        // reads under its own BDF.
        let requester = tlp.header().requester();
        if let Some(vf) = self.vfs.iter_mut().find(|vf| vf.bdf == requester) {
            vf.dma.deliver_completion(tlp, &mut vf.memory);
            vf.sync_dma_status();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccai_pcie::{Fabric, PortId, VecHostMemory};

    fn host() -> Bdf {
        Bdf::new(0, 2, 0)
    }

    fn setup() -> (Fabric, VecHostMemory, PartitionedXpu) {
        let xpu = PartitionedXpu::new(XpuSpec::a100(), Bdf::new(0x17, 0, 0), 0x8000_0000, 2);
        (Fabric::new(), VecHostMemory::new(1 << 20), xpu)
    }

    fn attach(fabric: &mut Fabric, xpu: PartitionedXpu) -> (u64, u64, RegisterFile) {
        let window = xpu.address_window();
        let regs = xpu.vf_registers(0).clone();
        let (b0, b1) = (xpu.bar0_base, xpu.bar1_base);
        for i in 0..xpu.vf_count() {
            fabric.map_bdf(xpu.vf_bdf(i), PortId(0));
        }
        fabric.attach(PortId(0), Box::new(xpu));
        fabric.map_range(window, PortId(0));
        let _ = (b0, b1);
        (0x8000_0000, 0x8000_0000 + crate::device::BAR1_SIZE, regs)
    }

    #[test]
    fn vf_bdfs_are_distinct_functions() {
        let (_, _, xpu) = setup();
        assert_eq!(xpu.vf_bdf(0), Bdf::new(0x17, 0, 1));
        assert_eq!(xpu.vf_bdf(1), Bdf::new(0x17, 0, 2));
        assert_eq!(xpu.vf_count(), 2);
    }

    #[test]
    fn vfs_have_isolated_memory_windows() {
        let (mut fabric, _mem, xpu) = setup();
        let vf0_win = xpu.vf_bar1(0);
        let vf1_win = xpu.vf_bar1(1);
        attach(&mut fabric, xpu);
        fabric.host_request(Tlp::memory_write(host(), vf0_win, vec![0xAA; 16]));
        fabric.host_request(Tlp::memory_write(host(), vf1_win, vec![0xBB; 16]));
        let r0 = fabric.host_request(Tlp::memory_read(host(), vf0_win, 16, 0));
        let r1 = fabric.host_request(Tlp::memory_read(host(), vf1_win, 16, 1));
        assert_eq!(r0[0].payload(), &[0xAA; 16]);
        assert_eq!(r1[0].payload(), &[0xBB; 16]);
        // Completions carry the owning VF's BDF — what a multi-tenant SC
        // keys on.
        assert_eq!(r0[0].header().completer(), Some(Bdf::new(0x17, 0, 1)));
        assert_eq!(r1[0].header().completer(), Some(Bdf::new(0x17, 0, 2)));
    }

    #[test]
    fn per_vf_dma_uses_the_vf_requester_id() {
        let (mut fabric, mut mem, xpu) = setup();
        let vf1_regs_base = xpu.vf_bar0(1);
        let regs = xpu.vf_registers(1).clone();
        let vf1 = xpu.vf_bdf(1);
        attach(&mut fabric, xpu);

        mem.as_mut_slice()[0x100..0x110].fill(0x5C);
        let write_reg = |fabric: &mut Fabric, reg: Reg, value: u64| {
            fabric.host_request(Tlp::memory_write(
                host(),
                vf1_regs_base + regs.offset(reg),
                value.to_le_bytes().to_vec(),
            ));
        };
        write_reg(&mut fabric, Reg::DmaSrc, 0x100);
        write_reg(&mut fabric, Reg::DmaDst, 0);
        write_reg(&mut fabric, Reg::DmaLen, 16);

        // Snoop the requester of the DMA read.
        let adversary = ccai_pcie::BusAdversary::new();
        fabric.add_tap(adversary.tap());
        write_reg(&mut fabric, Reg::DmaCtrl, 1);
        while fabric.pump(&mut mem) > 0 {}
        let reads = adversary.log().of_type(TlpType::MemRead).len();
        assert!(reads >= 1);
        assert!(adversary
            .log()
            .observed
            .iter()
            .any(|(t, _)| t.header().tlp_type() == TlpType::MemRead
                && t.header().requester() == vf1));
    }

    #[test]
    fn vf_reset_wipes_only_that_instance() {
        let (mut fabric, _mem, xpu) = setup();
        let vf0_win = xpu.vf_bar1(0);
        let vf1_win = xpu.vf_bar1(1);
        let vf0_regs = xpu.vf_bar0(0);
        let regs = xpu.vf_registers(0).clone();
        attach(&mut fabric, xpu);

        fabric.host_request(Tlp::memory_write(host(), vf0_win, vec![0xAA; 8]));
        fabric.host_request(Tlp::memory_write(host(), vf1_win, vec![0xBB; 8]));
        fabric.host_request(Tlp::memory_write(
            host(),
            vf0_regs + regs.offset(Reg::ResetCtrl),
            RESET_MAGIC.to_le_bytes().to_vec(),
        ));
        let r0 = fabric.host_request(Tlp::memory_read(host(), vf0_win, 8, 0));
        let r1 = fabric.host_request(Tlp::memory_read(host(), vf1_win, 8, 1));
        assert_eq!(r0[0].payload(), &[0u8; 8], "VF0 wiped");
        assert_eq!(r1[0].payload(), &[0xBB; 8], "VF1 untouched");
    }

    #[test]
    fn vf_inference_is_independent() {
        let (mut fabric, mut mem, xpu) = setup();
        let wins: Vec<u64> = (0..2).map(|i| xpu.vf_bar1(i)).collect();
        let reg_bases: Vec<u64> = (0..2).map(|i| xpu.vf_bar0(i)).collect();
        let regs = xpu.vf_registers(0).clone();
        attach(&mut fabric, xpu);

        for (i, (win, reg_base)) in wins.iter().zip(reg_bases.iter()).enumerate() {
            let weights = format!("weights-{i}").into_bytes();
            let input = format!("input-{i}").into_bytes();
            fabric.host_request(Tlp::memory_write(host(), win + 0x1000, weights.clone()));
            fabric.host_request(Tlp::memory_write(host(), win + 0x2000, input.clone()));
            let wr = |fabric: &mut Fabric, reg: Reg, value: u64| {
                fabric.host_request(Tlp::memory_write(
                    host(),
                    reg_base + regs.offset(reg),
                    value.to_le_bytes().to_vec(),
                ));
            };
            wr(&mut fabric, Reg::CmdArg0, 0x1000);
            wr(&mut fabric, Reg::CmdArg1, weights.len() as u64);
            wr(&mut fabric, Reg::CmdDoorbell, 1);
            wr(&mut fabric, Reg::CmdArg0, 0x2000);
            wr(&mut fabric, Reg::CmdArg1, input.len() as u64);
            wr(&mut fabric, Reg::CmdArg2, 0x3000);
            wr(&mut fabric, Reg::CmdDoorbell, 2);
            let result = fabric.host_request(Tlp::memory_read(host(), win + 0x3000, 32, 7));
            assert_eq!(
                result[0].payload(),
                CommandProcessor::surrogate_inference(&weights, &input),
                "VF {i}"
            );
        }
        while fabric.pump(&mut mem) > 0 {}
        assert!(fabric.drain_host_inbox().len() >= 2, "per-VF interrupts");
    }

    #[test]
    #[should_panic(expected = "1-7 virtual functions")]
    fn zero_vfs_rejected() {
        let _ = PartitionedXpu::new(XpuSpec::a100(), Bdf::new(0x17, 0, 0), 0x8000_0000, 0);
    }
}
