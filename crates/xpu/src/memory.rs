//! On-device memory.
//!
//! A flat byte store with a simple region allocator (weights, activations,
//! KV cache, command buffers) and a [`DeviceMemory::wipe`] path used by
//! the xPU environment guard's cold-boot reset (§4.2): "cleaning its
//! memory, caches, registers, and TLB status".

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A named allocation inside device memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    /// Start offset in device memory.
    pub base: u64,
    /// Length in bytes.
    pub len: u64,
}

impl Region {
    /// Exclusive end offset.
    pub fn end(&self) -> u64 {
        self.base + self.len
    }

    /// True if `addr` falls inside the region.
    pub fn contains(&self, addr: u64) -> bool {
        (self.base..self.end()).contains(&addr)
    }
}

/// Errors from device-memory operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemoryError {
    /// Not enough free space for the requested allocation.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes still free.
        free: u64,
    },
    /// An access fell outside the device memory.
    OutOfBounds {
        /// Offending address.
        addr: u64,
        /// Access length.
        len: u64,
    },
    /// Allocation name already in use.
    NameTaken(String),
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryError::OutOfMemory { requested, free } => {
                write!(f, "out of device memory: requested {requested}, free {free}")
            }
            MemoryError::OutOfBounds { addr, len } => {
                write!(f, "device memory access out of bounds: {addr:#x}+{len}")
            }
            MemoryError::NameTaken(name) => write!(f, "region name already used: {name}"),
        }
    }
}

impl std::error::Error for MemoryError {}

/// Device memory with named-region bump allocation.
///
/// Backing storage is allocated lazily in sparse 64 KiB chunks so an
/// "80 GiB" A100 model does not actually reserve 80 GiB of host RAM.
///
/// # Example
///
/// ```
/// use ccai_xpu::DeviceMemory;
///
/// let mut mem = DeviceMemory::new(1 << 20);
/// let weights = mem.alloc("weights", 4096)?;
/// mem.write(weights.base, &[7; 16])?;
/// assert_eq!(mem.read(weights.base, 16)?, vec![7; 16]);
/// # Ok::<(), ccai_xpu::memory::MemoryError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DeviceMemory {
    capacity: u64,
    next_free: u64,
    regions: BTreeMap<String, Region>,
    chunks: BTreeMap<u64, Vec<u8>>,
}

const CHUNK: u64 = 64 * 1024;

impl DeviceMemory {
    /// Creates device memory of `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "device memory capacity must be positive");
        DeviceMemory {
            capacity,
            next_free: 0,
            regions: BTreeMap::new(),
            chunks: BTreeMap::new(),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated to regions.
    pub fn allocated(&self) -> u64 {
        self.next_free
    }

    /// Bytes still available.
    pub fn free(&self) -> u64 {
        self.capacity - self.next_free
    }

    /// Fraction of capacity allocated (0.0–1.0).
    pub fn utilization(&self) -> f64 {
        self.next_free as f64 / self.capacity as f64
    }

    /// Allocates a named region of `len` bytes (64-byte aligned).
    ///
    /// # Errors
    ///
    /// [`MemoryError::OutOfMemory`] if insufficient space remains,
    /// [`MemoryError::NameTaken`] if the name is already allocated.
    pub fn alloc(&mut self, name: &str, len: u64) -> Result<Region, MemoryError> {
        if self.regions.contains_key(name) {
            return Err(MemoryError::NameTaken(name.to_string()));
        }
        let base = (self.next_free + 63) & !63;
        if base + len > self.capacity {
            return Err(MemoryError::OutOfMemory { requested: len, free: self.free() });
        }
        let region = Region { base, len };
        self.next_free = base + len;
        self.regions.insert(name.to_string(), region);
        Ok(region)
    }

    /// Looks up a named region.
    pub fn region(&self, name: &str) -> Option<Region> {
        self.regions.get(name).copied()
    }

    /// Frees *all* regions and zeroes the backing store — the cold-boot
    /// reset the xPU environment guard triggers when a task terminates.
    pub fn wipe(&mut self) {
        self.regions.clear();
        self.chunks.clear();
        self.next_free = 0;
    }

    /// SHA-256 digest of the memory *content*: every non-zero 64 KiB
    /// chunk hashed in address order as `base_be || bytes`. All-zero
    /// chunks are skipped, so a wiped memory digests identically to one
    /// that was never written — the differential check the
    /// fault-injection suite uses to prove recovery is lossless.
    pub fn content_digest(&self) -> [u8; 32] {
        let mut hasher = ccai_crypto::Sha256::new();
        for (base, chunk) in &self.chunks {
            if chunk.iter().all(|&b| b == 0) {
                continue;
            }
            hasher.update(&base.to_be_bytes());
            hasher.update(chunk);
        }
        let mut out = [0u8; 32];
        out.copy_from_slice(hasher.finalize().as_bytes());
        out
    }

    fn check(&self, addr: u64, len: u64) -> Result<(), MemoryError> {
        if addr.checked_add(len).is_none_or(|end| end > self.capacity) {
            return Err(MemoryError::OutOfBounds { addr, len });
        }
        Ok(())
    }

    /// Writes bytes at `addr`.
    ///
    /// # Errors
    ///
    /// [`MemoryError::OutOfBounds`] if the range exceeds capacity.
    pub fn write(&mut self, addr: u64, data: &[u8]) -> Result<(), MemoryError> {
        self.check(addr, data.len() as u64)?;
        let mut offset = 0usize;
        while offset < data.len() {
            let pos = addr + offset as u64;
            let chunk_base = pos / CHUNK * CHUNK;
            let within = (pos - chunk_base) as usize;
            let take = ((CHUNK as usize) - within).min(data.len() - offset);
            let chunk = self
                .chunks
                .entry(chunk_base)
                .or_insert_with(|| vec![0; CHUNK as usize]);
            chunk[within..within + take].copy_from_slice(&data[offset..offset + take]);
            offset += take;
        }
        Ok(())
    }

    /// Reads `len` bytes at `addr` (unwritten memory reads as zero).
    ///
    /// # Errors
    ///
    /// [`MemoryError::OutOfBounds`] if the range exceeds capacity.
    pub fn read(&self, addr: u64, len: u64) -> Result<Vec<u8>, MemoryError> {
        self.check(addr, len)?;
        let mut out = vec![0u8; len as usize];
        let mut offset = 0usize;
        while offset < out.len() {
            let pos = addr + offset as u64;
            let chunk_base = pos / CHUNK * CHUNK;
            let within = (pos - chunk_base) as usize;
            let take = ((CHUNK as usize) - within).min(out.len() - offset);
            if let Some(chunk) = self.chunks.get(&chunk_base) {
                out[offset..offset + take].copy_from_slice(&chunk[within..within + take]);
            }
            offset += take;
        }
        Ok(out)
    }

    /// True if every byte of backing storage is zero — used by tests to
    /// prove the environment guard left no residue.
    pub fn is_zeroed(&self) -> bool {
        self.chunks.values().all(|c| c.iter().all(|&b| b == 0))
    }
}

impl DeviceMemory {
    /// Serializes the memory image: allocator cursor, named regions and
    /// every lazily-materialised chunk (in address order). The capacity is
    /// included so a snapshot can only be restored onto a like-sized part.
    pub fn encode_snapshot(&self, enc: &mut ccai_sim::snapshot::Encoder) {
        enc.u64(self.capacity);
        enc.u64(self.next_free);
        enc.u64(self.regions.len() as u64);
        for (name, region) in &self.regions {
            enc.str(name);
            enc.u64(region.base);
            enc.u64(region.len);
        }
        enc.u64(self.chunks.len() as u64);
        for (base, chunk) in &self.chunks {
            enc.u64(*base);
            enc.bytes(chunk);
        }
    }

    /// Restores a memory image captured by [`DeviceMemory::encode_snapshot`].
    ///
    /// # Errors
    ///
    /// Any [`ccai_sim::snapshot::SnapshotError`] on malformed input, a
    /// capacity mismatch, or chunks that do not fit the address space.
    pub fn restore_snapshot(
        &mut self,
        dec: &mut ccai_sim::snapshot::Decoder<'_>,
    ) -> Result<(), ccai_sim::snapshot::SnapshotError> {
        use ccai_sim::snapshot::SnapshotError;
        let capacity = dec.u64()?;
        if capacity != self.capacity {
            return Err(SnapshotError::Invalid("device memory capacity mismatch"));
        }
        let next_free = dec.u64()?;
        if next_free > capacity {
            return Err(SnapshotError::Invalid("allocator cursor past capacity"));
        }
        let n_regions = dec.seq_len()?;
        let mut regions = BTreeMap::new();
        for _ in 0..n_regions {
            let name = dec.str()?.to_string();
            let base = dec.u64()?;
            let len = dec.u64()?;
            if base.checked_add(len).is_none_or(|end| end > capacity) {
                return Err(SnapshotError::Invalid("region out of bounds"));
            }
            regions.insert(name, Region { base, len });
        }
        let n_chunks = dec.seq_len()?;
        let mut chunks = BTreeMap::new();
        for _ in 0..n_chunks {
            let base = dec.u64()?;
            let data = dec.bytes()?;
            if data.len() as u64 != CHUNK || !base.is_multiple_of(CHUNK) || base >= capacity {
                return Err(SnapshotError::Invalid("malformed memory chunk"));
            }
            chunks.insert(base, data);
        }
        self.next_free = next_free;
        self.regions = regions;
        self.chunks = chunks;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_rw_round_trip() {
        let mut mem = DeviceMemory::new(1 << 20);
        let r = mem.alloc("weights", 1000).unwrap();
        mem.write(r.base, b"hello xpu").unwrap();
        assert_eq!(mem.read(r.base, 9).unwrap(), b"hello xpu");
    }

    #[test]
    fn allocations_do_not_overlap_and_are_aligned() {
        let mut mem = DeviceMemory::new(1 << 20);
        let a = mem.alloc("a", 100).unwrap();
        let b = mem.alloc("b", 100).unwrap();
        assert!(a.end() <= b.base);
        assert_eq!(b.base % 64, 0);
    }

    #[test]
    fn oom_reports_free_space() {
        let mut mem = DeviceMemory::new(1024);
        mem.alloc("a", 1000).unwrap();
        match mem.alloc("b", 100) {
            Err(MemoryError::OutOfMemory { requested: 100, free }) => {
                assert!(free < 100);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut mem = DeviceMemory::new(1024);
        mem.alloc("x", 10).unwrap();
        assert!(matches!(mem.alloc("x", 10), Err(MemoryError::NameTaken(_))));
    }

    #[test]
    fn out_of_bounds_rw_rejected() {
        let mut mem = DeviceMemory::new(100);
        assert!(matches!(mem.write(90, &[0; 20]), Err(MemoryError::OutOfBounds { .. })));
        assert!(matches!(mem.read(u64::MAX, 2), Err(MemoryError::OutOfBounds { .. })));
    }

    #[test]
    fn sparse_chunks_span_boundaries() {
        let mut mem = DeviceMemory::new(1 << 20);
        let addr = CHUNK - 5; // straddles two chunks
        mem.write(addr, &[9; 10]).unwrap();
        assert_eq!(mem.read(addr, 10).unwrap(), vec![9; 10]);
        assert_eq!(mem.read(addr - 1, 1).unwrap(), vec![0]);
    }

    #[test]
    fn huge_capacity_is_lazy() {
        // "80 GiB" without 80 GiB of RAM.
        let mut mem = DeviceMemory::new(80 << 30);
        mem.write(79 << 30, &[1]).unwrap();
        assert_eq!(mem.read(79 << 30, 1).unwrap(), vec![1]);
        assert!(mem.chunks.len() < 4);
    }

    #[test]
    fn wipe_clears_everything() {
        let mut mem = DeviceMemory::new(1 << 20);
        let r = mem.alloc("secret", 64).unwrap();
        mem.write(r.base, &[0xAA; 64]).unwrap();
        assert!(!mem.is_zeroed());
        mem.wipe();
        assert!(mem.is_zeroed());
        assert_eq!(mem.allocated(), 0);
        assert!(mem.region("secret").is_none());
        assert_eq!(mem.read(r.base, 64).unwrap(), vec![0; 64]);
    }

    #[test]
    fn utilization_tracks_allocation() {
        let mut mem = DeviceMemory::new(1000);
        assert_eq!(mem.utilization(), 0.0);
        mem.alloc("half", 500).unwrap();
        assert!((mem.utilization() - 0.5).abs() < 0.01);
    }
}
