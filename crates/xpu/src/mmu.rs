//! The optional on-board MMU.
//!
//! Commercial GPUs carry an on-board MMU while TPU-style parts lack one
//! (§2.1) — one of the hardware-heterogeneity facts that defeats
//! device-specific protection schemes. ccAI never programs the MMU itself
//! (it stays device-agnostic); it only *verifies* the page-table base
//! register as part of the A3 "security verify" action, which is what
//! this model supports.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Page size used by the simulated MMUs.
pub const PAGE_SIZE: u64 = 64 * 1024;

/// Errors from MMU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmuError {
    /// Translation requested for an unmapped virtual page.
    PageFault {
        /// The faulting virtual address.
        va: u64,
    },
    /// Mapping would overwrite an existing entry.
    AlreadyMapped {
        /// The conflicting virtual page base.
        va_page: u64,
    },
    /// Address is not page-aligned.
    Misaligned {
        /// The offending address.
        addr: u64,
    },
}

impl fmt::Display for MmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MmuError::PageFault { va } => write!(f, "page fault at {va:#x}"),
            MmuError::AlreadyMapped { va_page } => write!(f, "page {va_page:#x} already mapped"),
            MmuError::Misaligned { addr } => write!(f, "misaligned address {addr:#x}"),
        }
    }
}

impl std::error::Error for MmuError {}

/// A single-level page table plus base register and TLB model.
///
/// # Example
///
/// ```
/// use ccai_xpu::Mmu;
///
/// let mut mmu = Mmu::new(0x4000_0000);
/// mmu.map(0x0, 0x10_0000)?;
/// assert_eq!(mmu.translate(0x42)?, 0x10_0042);
/// # Ok::<(), ccai_xpu::mmu::MmuError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mmu {
    table_base: u64,
    entries: BTreeMap<u64, u64>, // va page -> pa page
    tlb_fills: u64,
}

impl Mmu {
    /// Creates an MMU whose page table lives at `table_base` in device
    /// memory.
    pub fn new(table_base: u64) -> Self {
        Mmu { table_base, entries: BTreeMap::new(), tlb_fills: 0 }
    }

    /// The page-table base register value — what the A3 environment check
    /// validates.
    pub fn table_base(&self) -> u64 {
        self.table_base
    }

    /// Reprograms the page-table base (a driver action; a *mismatching*
    /// value is what the PCIe-SC's environment check catches).
    pub fn set_table_base(&mut self, base: u64) {
        self.table_base = base;
    }

    /// Maps one page `va → pa`.
    ///
    /// # Errors
    ///
    /// [`MmuError::Misaligned`] for unaligned addresses;
    /// [`MmuError::AlreadyMapped`] if the VA page is occupied.
    pub fn map(&mut self, va: u64, pa: u64) -> Result<(), MmuError> {
        if !va.is_multiple_of(PAGE_SIZE) {
            return Err(MmuError::Misaligned { addr: va });
        }
        if !pa.is_multiple_of(PAGE_SIZE) {
            return Err(MmuError::Misaligned { addr: pa });
        }
        if self.entries.contains_key(&va) {
            return Err(MmuError::AlreadyMapped { va_page: va });
        }
        self.entries.insert(va, pa);
        Ok(())
    }

    /// Translates a virtual to a physical device address.
    ///
    /// # Errors
    ///
    /// [`MmuError::PageFault`] for unmapped pages.
    pub fn translate(&mut self, va: u64) -> Result<u64, MmuError> {
        let page = va / PAGE_SIZE * PAGE_SIZE;
        let pa_page = self.entries.get(&page).ok_or(MmuError::PageFault { va })?;
        self.tlb_fills += 1;
        Ok(pa_page + (va - page))
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.entries.len()
    }

    /// Translation count (a proxy for TLB activity, wiped on reset).
    pub fn tlb_fills(&self) -> u64 {
        self.tlb_fills
    }

    /// Clears all mappings and TLB state — the environment-guard reset.
    pub fn wipe(&mut self) {
        self.entries.clear();
        self.tlb_fills = 0;
    }
}

impl Mmu {
    /// Serializes the page table, base register and TLB counter.
    pub fn encode_snapshot(&self, enc: &mut ccai_sim::snapshot::Encoder) {
        enc.u64(self.table_base);
        enc.u64(self.entries.len() as u64);
        for (va, pa) in &self.entries {
            enc.u64(*va);
            enc.u64(*pa);
        }
        enc.u64(self.tlb_fills);
    }

    /// Restores state captured by [`Mmu::encode_snapshot`].
    ///
    /// # Errors
    ///
    /// Any [`ccai_sim::snapshot::SnapshotError`] on malformed input or
    /// misaligned page-table entries.
    pub fn restore_snapshot(
        &mut self,
        dec: &mut ccai_sim::snapshot::Decoder<'_>,
    ) -> Result<(), ccai_sim::snapshot::SnapshotError> {
        use ccai_sim::snapshot::SnapshotError;
        let table_base = dec.u64()?;
        let n = dec.seq_len()?;
        let mut entries = BTreeMap::new();
        for _ in 0..n {
            let va = dec.u64()?;
            let pa = dec.u64()?;
            if !va.is_multiple_of(PAGE_SIZE) || !pa.is_multiple_of(PAGE_SIZE) {
                return Err(SnapshotError::Invalid("misaligned page-table entry"));
            }
            entries.insert(va, pa);
        }
        let tlb_fills = dec.u64()?;
        self.table_base = table_base;
        self.entries = entries;
        self.tlb_fills = tlb_fills;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_translate_round_trip() {
        let mut mmu = Mmu::new(0);
        mmu.map(0, PAGE_SIZE * 4).unwrap();
        mmu.map(PAGE_SIZE, PAGE_SIZE * 9).unwrap();
        assert_eq!(mmu.translate(100).unwrap(), PAGE_SIZE * 4 + 100);
        assert_eq!(mmu.translate(PAGE_SIZE + 1).unwrap(), PAGE_SIZE * 9 + 1);
        assert_eq!(mmu.mapped_pages(), 2);
    }

    #[test]
    fn unmapped_page_faults() {
        let mut mmu = Mmu::new(0);
        assert_eq!(mmu.translate(0x5000_0000), Err(MmuError::PageFault { va: 0x5000_0000 }));
    }

    #[test]
    fn double_map_rejected() {
        let mut mmu = Mmu::new(0);
        mmu.map(0, 0).unwrap();
        assert_eq!(mmu.map(0, PAGE_SIZE), Err(MmuError::AlreadyMapped { va_page: 0 }));
    }

    #[test]
    fn misaligned_rejected() {
        let mut mmu = Mmu::new(0);
        assert!(matches!(mmu.map(5, 0), Err(MmuError::Misaligned { .. })));
        assert!(matches!(mmu.map(0, 5), Err(MmuError::Misaligned { .. })));
    }

    #[test]
    fn wipe_clears_state() {
        let mut mmu = Mmu::new(0x1000);
        mmu.map(0, 0).unwrap();
        mmu.translate(1).unwrap();
        assert_eq!(mmu.tlb_fills(), 1);
        mmu.wipe();
        assert_eq!(mmu.mapped_pages(), 0);
        assert_eq!(mmu.tlb_fills(), 0);
        assert_eq!(mmu.table_base(), 0x1000, "base register survives wipe");
    }

    #[test]
    fn base_register_reprogramming() {
        let mut mmu = Mmu::new(0x1000);
        mmu.set_table_base(0xBAD0_0000);
        assert_eq!(mmu.table_base(), 0xBAD0_0000);
    }
}
