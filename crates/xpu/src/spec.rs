//! The xPU device catalog.
//!
//! One spec per accelerator the paper evaluates (§7, Fig. 10), carrying
//! the published parameters the performance model needs. Figures are
//! approximate public datasheet values — the simulation only needs their
//! relative magnitudes to reproduce the evaluation's shape.

use ccai_pcie::{LinkConfig, LinkSpeed};
use ccai_sim::Bandwidth;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Accelerator family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum XpuKind {
    /// Graphics processing unit.
    Gpu,
    /// Neural processing unit.
    Npu,
    /// FPGA-based accelerator.
    FpgaAccelerator,
}

impl fmt::Display for XpuKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XpuKind::Gpu => write!(f, "GPU"),
            XpuKind::Npu => write!(f, "NPU"),
            XpuKind::FpgaAccelerator => write!(f, "FPGA-Acc"),
        }
    }
}

/// Static description of one xPU model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct XpuSpec {
    name: String,
    vendor: String,
    kind: XpuKind,
    memory_bytes: u64,
    link: LinkConfig,
    /// Sustained dense FP16 throughput in TFLOP/s.
    compute_tflops: f64,
    /// Device memory bandwidth in GB/s.
    memory_bandwidth_gbps: f64,
    /// GPUs carry an on-board MMU; TPU-style parts do not (§2.1).
    has_mmu: bool,
    /// Whether a software-triggered environment reset is supported (§4.2).
    supports_soft_reset: bool,
    firmware_version: String,
}

impl XpuSpec {
    /// Builds a custom spec.
    ///
    /// # Panics
    ///
    /// Panics if memory, compute, or bandwidth is zero/non-positive.
    #[allow(clippy::too_many_arguments)]
    pub fn custom(
        name: &str,
        vendor: &str,
        kind: XpuKind,
        memory_bytes: u64,
        link: LinkConfig,
        compute_tflops: f64,
        memory_bandwidth_gbps: f64,
        has_mmu: bool,
        supports_soft_reset: bool,
        firmware_version: &str,
    ) -> XpuSpec {
        assert!(memory_bytes > 0, "device memory must be positive");
        assert!(compute_tflops > 0.0, "compute throughput must be positive");
        assert!(memory_bandwidth_gbps > 0.0, "memory bandwidth must be positive");
        XpuSpec {
            name: name.to_string(),
            vendor: vendor.to_string(),
            kind,
            memory_bytes,
            link,
            compute_tflops,
            memory_bandwidth_gbps,
            has_mmu,
            supports_soft_reset,
            firmware_version: firmware_version.to_string(),
        }
    }

    /// NVIDIA A100 80GB PCIe (Gen4 ×16).
    pub fn a100() -> XpuSpec {
        Self::custom(
            "NVIDIA A100",
            "NVIDIA",
            XpuKind::Gpu,
            80 << 30,
            LinkConfig::new(LinkSpeed::Gen4, 16),
            312.0,
            1935.0,
            true,
            true,
            "92.00.45.00.06",
        )
    }

    /// NVIDIA RTX 4090 Ti-class consumer GPU (Gen4 ×16).
    pub fn rtx4090ti() -> XpuSpec {
        Self::custom(
            "NVIDIA RTX4090Ti",
            "NVIDIA",
            XpuKind::Gpu,
            24 << 30,
            LinkConfig::new(LinkSpeed::Gen4, 16),
            330.0,
            1008.0,
            true,
            true,
            "95.02.18.80.01",
        )
    }

    /// NVIDIA T4 inference GPU (Gen3 ×16).
    pub fn t4() -> XpuSpec {
        Self::custom(
            "NVIDIA T4",
            "NVIDIA",
            XpuKind::Gpu,
            16 << 30,
            LinkConfig::new(LinkSpeed::Gen3, 16),
            65.0,
            320.0,
            true,
            true,
            "90.04.38.00.03",
        )
    }

    /// Tenstorrent Wormhole N150d NPU (Gen4 ×16). No on-board MMU — the
    /// heterogeneity case of §2.1.
    pub fn tenstorrent_n150d() -> XpuSpec {
        Self::custom(
            "Tenstorrent N150d",
            "Tenstorrent",
            XpuKind::Npu,
            12 << 30,
            LinkConfig::new(LinkSpeed::Gen4, 16),
            74.0,
            288.0,
            false,
            true,
            "ttkmd-1.29",
        )
    }

    /// Enflame S60 inference GPU (Gen4 ×16).
    pub fn enflame_s60() -> XpuSpec {
        Self::custom(
            "Enflame S60",
            "Enflame",
            XpuKind::Gpu,
            48 << 30,
            LinkConfig::new(LinkSpeed::Gen4, 16),
            140.0,
            696.0,
            true,
            false,
            "1.4.0.3",
        )
    }

    /// All five evaluation devices, in the paper's Fig. 10 order.
    pub fn evaluation_set() -> Vec<XpuSpec> {
        vec![
            Self::a100(),
            Self::t4(),
            Self::rtx4090ti(),
            Self::enflame_s60(),
            Self::tenstorrent_n150d(),
        ]
    }

    /// Marketing name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Vendor name.
    pub fn vendor(&self) -> &str {
        &self.vendor
    }

    /// Accelerator family.
    pub fn kind(&self) -> XpuKind {
        self.kind
    }

    /// On-device memory capacity in bytes.
    pub fn memory_bytes(&self) -> u64 {
        self.memory_bytes
    }

    /// The device's PCIe link.
    pub fn link(&self) -> LinkConfig {
        self.link
    }

    /// Returns a copy of this spec running on a different link — used by
    /// the Fig. 12a limited-bandwidth stress test.
    pub fn with_link(&self, link: LinkConfig) -> XpuSpec {
        XpuSpec { link, ..self.clone() }
    }

    /// Sustained FP16 throughput in TFLOP/s.
    pub fn compute_tflops(&self) -> f64 {
        self.compute_tflops
    }

    /// Compute throughput as a [`Bandwidth`] in FLOP/s.
    pub fn compute_rate(&self) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(self.compute_tflops * 1e12)
    }

    /// Device memory bandwidth.
    pub fn memory_bandwidth(&self) -> Bandwidth {
        Bandwidth::from_gbytes_per_sec(self.memory_bandwidth_gbps)
    }

    /// Whether the device has an on-board MMU.
    pub fn has_mmu(&self) -> bool {
        self.has_mmu
    }

    /// Whether a software-triggered environment reset is supported.
    pub fn supports_soft_reset(&self) -> bool {
        self.supports_soft_reset
    }

    /// Firmware version string.
    pub fn firmware_version(&self) -> &str {
        &self.firmware_version
    }
}

impl fmt::Display for XpuSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {} GiB, {}, {} TFLOPS)",
            self.name,
            self.kind,
            self.memory_bytes >> 30,
            self.link,
            self.compute_tflops
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_set_has_five_distinct_devices() {
        let set = XpuSpec::evaluation_set();
        assert_eq!(set.len(), 5);
        for (i, a) in set.iter().enumerate() {
            for b in &set[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
    }

    #[test]
    fn heterogeneity_is_modelled() {
        // All three NVIDIA GPUs + Enflame have MMUs; the NPU does not.
        assert!(XpuSpec::a100().has_mmu());
        assert!(XpuSpec::enflame_s60().has_mmu());
        assert!(!XpuSpec::tenstorrent_n150d().has_mmu());
        // The Enflame part lacks soft reset, forcing the cold-boot path.
        assert!(!XpuSpec::enflame_s60().supports_soft_reset());
    }

    #[test]
    fn relative_performance_ordering() {
        // A100 out-computes T4 by roughly 5x; T4 rides a slower link.
        let a100 = XpuSpec::a100();
        let t4 = XpuSpec::t4();
        assert!(a100.compute_tflops() > 4.0 * t4.compute_tflops());
        assert!(
            a100.link().raw_bandwidth().bytes_per_sec()
                > 1.9 * t4.link().raw_bandwidth().bytes_per_sec()
        );
    }

    #[test]
    fn with_link_only_changes_link() {
        let base = XpuSpec::a100();
        let slow = base.with_link(LinkConfig::new(LinkSpeed::Gen3, 8));
        assert_eq!(slow.name(), base.name());
        assert_eq!(slow.memory_bytes(), base.memory_bytes());
        assert_ne!(
            slow.link().raw_bandwidth().bytes_per_sec(),
            base.link().raw_bandwidth().bytes_per_sec()
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_memory_rejected() {
        let _ = XpuSpec::custom(
            "x",
            "v",
            XpuKind::Gpu,
            0,
            LinkConfig::new(LinkSpeed::Gen3, 16),
            1.0,
            1.0,
            true,
            true,
            "1",
        );
    }

    #[test]
    fn display_mentions_key_facts() {
        let s = XpuSpec::a100().to_string();
        assert!(s.contains("A100") && s.contains("80 GiB") && s.contains("16GT/s"));
    }
}
