//! xPU device substrate for the ccAI reproduction.
//!
//! The prototype validates ccAI against five physical accelerators — three
//! NVIDIA GPUs (A100, RTX4090Ti, T4), a Tenstorrent N150d NPU, and an
//! Enflame S60 GPU (§7). None is available here, so this crate models each
//! as a PCIe endpoint with the behaviours ccAI actually depends on:
//!
//! * DMA and MMIO over TLPs (the *only* interface ccAI protects);
//! * hardware heterogeneity the paper calls out (§2.1): GPUs carry an
//!   on-board MMU, the NPU does not; each vendor's driver programs a
//!   different register layout;
//! * published device parameters (memory size, PCIe link, compute and
//!   memory throughput) for the performance model;
//! * firmware with a vendor signature (used by trust establishment) and a
//!   cold-boot reset path (used by the xPU environment guard).
//!
//! Modules:
//!
//! * [`spec`] — the device catalog ([`XpuSpec`], [`XpuKind`]);
//! * [`memory`] — on-device memory with region allocation and wiping;
//! * [`mmu`] — the optional on-board MMU (page tables, base register);
//! * [`registers`] — the MMIO register file;
//! * [`dma`] — the descriptor-driven DMA engine;
//! * [`command`] — the command processor running verifiable "kernels";
//! * [`firmware`] — firmware images, versions and vendor signatures;
//! * [`device`] — [`Xpu`], the assembled PCIe endpoint.
//!
//! # Example
//!
//! ```
//! use ccai_xpu::{Xpu, XpuSpec};
//! use ccai_pcie::Bdf;
//!
//! let gpu = Xpu::new(XpuSpec::a100(), Bdf::new(0x17, 0, 0), 0x8000_0000);
//! assert_eq!(gpu.spec().name(), "NVIDIA A100");
//! assert!(gpu.spec().has_mmu());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod command;
pub mod device;
pub mod dma;
pub mod firmware;
pub mod memory;
pub mod mmu;
pub mod partition;
pub mod registers;
pub mod spec;

pub use command::{Command, CommandProcessor};
pub use device::Xpu;
pub use dma::{DmaDirection, DmaEngine, DmaRequest};
pub use firmware::Firmware;
pub use memory::DeviceMemory;
pub use mmu::Mmu;
pub use partition::PartitionedXpu;
pub use registers::{RegisterFile, Reg};
pub use spec::{XpuKind, XpuSpec};
