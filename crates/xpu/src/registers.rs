//! The MMIO register file.
//!
//! Drivers program xPUs through BAR-mapped registers. ccAI's L2 table
//! treats MMIO writes of "control/register values" as Write-Protected
//! packets (A3) and performs "additional security verification (e.g.
//! checking the correctness of the xPU page table register)" (§4).
//!
//! The register map is deliberately vendor-flavoured: each [`XpuSpec`]
//! family lays the same logical registers out at different offsets, so
//! the TVM driver stacks really are device-specific while the PCIe-SC
//! remains device-agnostic (it matches address *ranges*, not registers).
//!
//! [`XpuSpec`]: crate::XpuSpec

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Logical register names shared by all devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Reg {
    /// DMA source address (host physical for H2D, device for D2H).
    DmaSrc,
    /// DMA destination address.
    DmaDst,
    /// DMA transfer length in bytes.
    DmaLen,
    /// DMA control/doorbell: writing a direction code starts a transfer.
    DmaCtrl,
    /// DMA status: 0 idle, 1 busy, 2 done, 3 error.
    DmaStatus,
    /// Interrupt status bits.
    IntStatus,
    /// Page table base (MMU-equipped devices).
    PageTableBase,
    /// Command doorbell: writing a command code dispatches it.
    CmdDoorbell,
    /// Command argument 0.
    CmdArg0,
    /// Command argument 1.
    CmdArg1,
    /// Command argument 2.
    CmdArg2,
    /// Command status.
    CmdStatus,
    /// Reset control: writing the magic value wipes the device.
    ResetCtrl,
    /// Firmware version (read-only).
    FirmwareVersion,
}

impl Reg {
    /// All registers, for layout generation.
    pub const ALL: [Reg; 14] = [
        Reg::DmaSrc,
        Reg::DmaDst,
        Reg::DmaLen,
        Reg::DmaCtrl,
        Reg::DmaStatus,
        Reg::IntStatus,
        Reg::PageTableBase,
        Reg::CmdDoorbell,
        Reg::CmdArg0,
        Reg::CmdArg1,
        Reg::CmdArg2,
        Reg::CmdStatus,
        Reg::ResetCtrl,
        Reg::FirmwareVersion,
    ];
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// The magic value that [`Reg::ResetCtrl`] requires for a reset.
pub const RESET_MAGIC: u64 = 0xC01D_B007; // "cold boot"

/// A vendor-flavoured register file: logical registers at vendor-specific
/// byte offsets, each 8 bytes wide.
///
/// # Example
///
/// ```
/// use ccai_xpu::{RegisterFile, Reg};
///
/// let mut regs = RegisterFile::with_layout("NVIDIA", 0x0);
/// regs.write(Reg::DmaLen, 4096);
/// assert_eq!(regs.read(Reg::DmaLen), 4096);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegisterFile {
    offsets: BTreeMap<Reg, u64>,
    values: BTreeMap<Reg, u64>,
}

impl RegisterFile {
    /// Builds a register file whose offsets depend on the vendor string —
    /// modelling the real-world divergence of register maps — starting at
    /// `base` within the BAR.
    pub fn with_layout(vendor: &str, base: u64) -> RegisterFile {
        // Deterministic vendor-specific stride and ordering.
        let seed: u64 = vendor.bytes().map(u64::from).sum();
        let stride = 8 + (seed % 3) * 8; // 8, 16, or 24 byte spacing
        let mut regs: Vec<Reg> = Reg::ALL.to_vec();
        // Rotate the layout by a vendor-dependent amount.
        let rotation = (seed as usize) % regs.len();
        regs.rotate_left(rotation);
        let offsets = regs
            .into_iter()
            .enumerate()
            .map(|(i, r)| (r, base + i as u64 * stride))
            .collect();
        RegisterFile { offsets, values: BTreeMap::new() }
    }

    /// Byte offset of a register within the BAR.
    pub fn offset(&self, reg: Reg) -> u64 {
        self.offsets[&reg]
    }

    /// Reverse lookup: which register (if any) lives at `offset`.
    pub fn reg_at(&self, offset: u64) -> Option<Reg> {
        self.offsets
            .iter()
            .find(|(_, &o)| o == offset)
            .map(|(&r, _)| r)
    }

    /// Total span of the register window in bytes.
    pub fn span(&self) -> u64 {
        self.offsets.values().max().copied().unwrap_or(0) + 8
    }

    /// Reads a register (unwritten registers read as zero).
    pub fn read(&self, reg: Reg) -> u64 {
        self.values.get(&reg).copied().unwrap_or(0)
    }

    /// Writes a register.
    pub fn write(&mut self, reg: Reg, value: u64) {
        self.values.insert(reg, value);
    }

    /// Zeroes every register — part of the cold-boot reset.
    pub fn wipe(&mut self) {
        self.values.clear();
    }
}

impl RegisterFile {
    /// Serializes register *values*. Offsets are a pure function of the
    /// vendor layout and are rebuilt, not captured.
    pub fn encode_snapshot(&self, enc: &mut ccai_sim::snapshot::Encoder) {
        enc.u64(self.values.len() as u64);
        for (reg, value) in &self.values {
            let idx = Reg::ALL.iter().position(|r| r == reg).expect("register in ALL");
            enc.u8(idx as u8);
            enc.u64(*value);
        }
    }

    /// Restores register values captured by
    /// [`RegisterFile::encode_snapshot`]; the layout of `self` is kept.
    ///
    /// # Errors
    ///
    /// Any [`ccai_sim::snapshot::SnapshotError`] on malformed input or an
    /// unknown register index.
    pub fn restore_snapshot(
        &mut self,
        dec: &mut ccai_sim::snapshot::Decoder<'_>,
    ) -> Result<(), ccai_sim::snapshot::SnapshotError> {
        use ccai_sim::snapshot::SnapshotError;
        let n = dec.seq_len()?;
        let mut values = BTreeMap::new();
        for _ in 0..n {
            let idx = dec.u8()? as usize;
            let reg = *Reg::ALL
                .get(idx)
                .ok_or(SnapshotError::Invalid("unknown register index"))?;
            values.insert(reg, dec.u64()?);
        }
        self.values = values;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layouts_differ_by_vendor() {
        let nv = RegisterFile::with_layout("NVIDIA", 0);
        let tt = RegisterFile::with_layout("Tenstorrent", 0);
        let differing = Reg::ALL
            .iter()
            .filter(|&&r| nv.offset(r) != tt.offset(r))
            .count();
        assert!(differing > Reg::ALL.len() / 2, "layouts too similar");
    }

    #[test]
    fn layout_is_deterministic() {
        let a = RegisterFile::with_layout("Enflame", 0x100);
        let b = RegisterFile::with_layout("Enflame", 0x100);
        assert_eq!(a, b);
    }

    #[test]
    fn offsets_unique_and_in_window() {
        let regs = RegisterFile::with_layout("NVIDIA", 0x40);
        let mut seen = std::collections::HashSet::new();
        for r in Reg::ALL {
            let o = regs.offset(r);
            assert!(seen.insert(o), "offset collision at {o:#x}");
            assert!(o >= 0x40 && o + 8 <= 0x40 + regs.span());
        }
    }

    #[test]
    fn reverse_lookup() {
        let regs = RegisterFile::with_layout("NVIDIA", 0);
        let o = regs.offset(Reg::DmaCtrl);
        assert_eq!(regs.reg_at(o), Some(Reg::DmaCtrl));
        assert_eq!(regs.reg_at(o + 1), None);
    }

    #[test]
    fn rw_and_wipe() {
        let mut regs = RegisterFile::with_layout("NVIDIA", 0);
        assert_eq!(regs.read(Reg::DmaStatus), 0);
        regs.write(Reg::DmaStatus, 2);
        regs.write(Reg::PageTableBase, 0xdead_b000);
        assert_eq!(regs.read(Reg::DmaStatus), 2);
        regs.wipe();
        assert_eq!(regs.read(Reg::PageTableBase), 0);
    }
}
