//! xPU firmware images and vendor signatures.
//!
//! The threat model trusts xPU firmware integrity (§2.2), and the secure
//! boot / attestation path leverages the fact that "today's xPUs support
//! firmware signature checking" (§8.2). Each simulated device ships a
//! firmware image whose SHA-256 measurement is Schnorr-signed by its
//! vendor; `ccai-trust` verifies the signature during attestation and the
//! security tests tamper with images to prove detection.

use ccai_crypto::{sha256, Digest, SchnorrKeyPair, SchnorrPublic, Signature};
use std::fmt;

/// A firmware image with its vendor signature.
#[derive(Clone)]
pub struct Firmware {
    version: String,
    image: Vec<u8>,
    measurement: Digest,
    signature: Signature,
    vendor_key: SchnorrPublic,
}

impl fmt::Debug for Firmware {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Firmware")
            .field("version", &self.version)
            .field("bytes", &self.image.len())
            .field("measurement", &self.measurement)
            .finish()
    }
}

impl Firmware {
    /// Builds and signs a firmware image with the vendor's signing key.
    pub fn build_signed(version: &str, image: Vec<u8>, vendor: &SchnorrKeyPair) -> Firmware {
        let measurement = measure(version, &image);
        let signature = vendor.sign(measurement.as_bytes());
        Firmware {
            version: version.to_string(),
            image,
            measurement,
            signature,
            vendor_key: vendor.public().clone(),
        }
    }

    /// Firmware version string.
    pub fn version(&self) -> &str {
        &self.version
    }

    /// The raw image bytes.
    pub fn image(&self) -> &[u8] {
        &self.image
    }

    /// SHA-256 measurement of version + image.
    pub fn measurement(&self) -> Digest {
        self.measurement
    }

    /// The vendor's public verification key shipped with the image.
    pub fn vendor_key(&self) -> &SchnorrPublic {
        &self.vendor_key
    }

    /// Verifies the vendor signature over a *freshly recomputed*
    /// measurement, so image tampering after signing is caught.
    pub fn verify(&self) -> bool {
        let fresh = measure(&self.version, &self.image);
        fresh == self.measurement && self.vendor_key.verify(fresh.as_bytes(), &self.signature)
    }

    /// Tampers with the image in place (for security tests).
    pub fn tamper(&mut self, byte: usize) {
        if !self.image.is_empty() {
            let idx = byte % self.image.len();
            self.image[idx] ^= 0xFF;
        }
    }
}

fn measure(version: &str, image: &[u8]) -> Digest {
    let mut data = Vec::with_capacity(version.len() + 1 + image.len());
    data.extend_from_slice(version.as_bytes());
    data.push(0);
    data.extend_from_slice(image);
    sha256(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccai_crypto::DhGroup;

    fn vendor() -> SchnorrKeyPair {
        SchnorrKeyPair::generate(&DhGroup::sim512(), &[0x11; 32])
    }

    #[test]
    fn signed_firmware_verifies() {
        let fw = Firmware::build_signed("92.00.45.00.06", vec![1, 2, 3, 4], &vendor());
        assert!(fw.verify());
    }

    #[test]
    fn image_tamper_detected() {
        let mut fw = Firmware::build_signed("1.0", vec![0u8; 128], &vendor());
        fw.tamper(64);
        assert!(!fw.verify());
    }

    #[test]
    fn version_tamper_detected() {
        let fw = Firmware::build_signed("1.0", vec![7; 16], &vendor());
        // Re-assembling with a different version under the same signature
        // must fail.
        let forged = Firmware {
            version: "2.0-evil".to_string(),
            image: fw.image.clone(),
            measurement: fw.measurement,
            signature: fw.signature.clone(),
            vendor_key: fw.vendor_key.clone(),
        };
        assert!(!forged.verify());
    }

    #[test]
    fn wrong_vendor_key_detected() {
        let fw = Firmware::build_signed("1.0", vec![7; 16], &vendor());
        let other = SchnorrKeyPair::generate(&DhGroup::sim512(), &[0x22; 32]);
        let forged = Firmware {
            vendor_key: other.public().clone(),
            ..fw
        };
        assert!(!forged.verify());
    }

    #[test]
    fn measurement_binds_version_and_image() {
        let a = measure("1.0", b"image");
        let b = measure("1.1", b"image");
        let c = measure("1.0", b"imagf");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
