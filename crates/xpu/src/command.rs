//! The command processor: the xPU's "compute" side.
//!
//! Real accelerators run opaque kernels; this model runs a *verifiable*
//! surrogate so end-to-end tests can prove the confidential data path is
//! lossless. The surrogate "inference" mixes input bytes with the loaded
//! model weights through iterated SHA-256, which has the two properties
//! the tests need:
//!
//! 1. it is deterministic — TVM-side code can predict the exact result
//!    and verify that encryption/decryption along the way was transparent;
//! 2. every byte of input and weights affects the output — any corruption
//!    introduced by a buggy handler or an undetected attack changes the
//!    result.

use crate::memory::DeviceMemory;
use ccai_crypto::sha256;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Commands accepted via the `CmdDoorbell` register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Command {
    /// Declare `[addr, addr+len)` as the model weights.
    LoadModel {
        /// Device address of the weights.
        addr: u64,
        /// Length in bytes.
        len: u64,
    },
    /// Run the surrogate inference over `[input, input+len)`, writing 32
    /// result bytes at `output`.
    RunInference {
        /// Device address of the input.
        input: u64,
        /// Input length in bytes.
        len: u64,
        /// Device address for the 32-byte result.
        output: u64,
    },
}

/// Command doorbell codes.
impl Command {
    /// Register encoding of the command opcode.
    pub fn opcode(self) -> u64 {
        match self {
            Command::LoadModel { .. } => 1,
            Command::RunInference { .. } => 2,
        }
    }
}

/// Command execution status, mirrored in the `CmdStatus` register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CmdStatus {
    /// No command executed yet.
    #[default]
    Idle,
    /// Last command succeeded.
    Done,
    /// Last command failed (bad addresses, no model loaded, …).
    Error,
}

impl CmdStatus {
    /// Register encoding.
    pub fn to_code(self) -> u64 {
        match self {
            CmdStatus::Idle => 0,
            CmdStatus::Done => 1,
            CmdStatus::Error => 2,
        }
    }
}

/// The command processor state.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommandProcessor {
    model: Option<(u64, u64)>,
    status: CmdStatus,
    executed: u64,
}

impl CommandProcessor {
    /// Creates an idle processor.
    pub fn new() -> Self {
        CommandProcessor::default()
    }

    /// Last command status.
    pub fn status(&self) -> CmdStatus {
        self.status
    }

    /// Number of commands executed.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// The loaded model region, if any.
    pub fn model(&self) -> Option<(u64, u64)> {
        self.model
    }

    /// Executes one command against device memory.
    pub fn execute(&mut self, command: Command, memory: &mut DeviceMemory) -> CmdStatus {
        self.executed += 1;
        self.status = match command {
            Command::LoadModel { addr, len } => {
                if len == 0 || memory.read(addr, len.min(1)).is_err() {
                    CmdStatus::Error
                } else {
                    self.model = Some((addr, len));
                    CmdStatus::Done
                }
            }
            Command::RunInference { input, len, output } => {
                match self.run_inference(input, len, output, memory) {
                    Ok(()) => CmdStatus::Done,
                    Err(()) => CmdStatus::Error,
                }
            }
        };
        self.status
    }

    fn run_inference(
        &self,
        input: u64,
        len: u64,
        output: u64,
        memory: &mut DeviceMemory,
    ) -> Result<(), ()> {
        let (model_addr, model_len) = self.model.ok_or(())?;
        let input_bytes = memory.read(input, len).map_err(|_| ())?;
        let weights = memory.read(model_addr, model_len).map_err(|_| ())?;
        let result = Self::surrogate_inference(&weights, &input_bytes);
        memory.write(output, &result).map_err(|_| ())
    }

    /// The deterministic surrogate computation, also callable host-side
    /// for verification: `H(H(weights) ‖ H(input) ‖ "ccai-infer")`.
    pub fn surrogate_inference(weights: &[u8], input: &[u8]) -> [u8; 32] {
        let mut data = Vec::with_capacity(74);
        data.extend_from_slice(sha256(weights).as_bytes());
        data.extend_from_slice(sha256(input).as_bytes());
        data.extend_from_slice(b"ccai-infer");
        *sha256(&data).as_bytes()
    }

    /// Cold-boot reset.
    pub fn wipe(&mut self) {
        self.model = None;
        self.status = CmdStatus::Idle;
    }
}

impl fmt::Display for CommandProcessor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CommandProcessor(status={:?}, executed={})",
            self.status, self.executed
        )
    }
}

impl CommandProcessor {
    /// Serializes the loaded-model descriptor, last status and counter.
    pub fn encode_snapshot(&self, enc: &mut ccai_sim::snapshot::Encoder) {
        enc.bool(self.model.is_some());
        if let Some((addr, len)) = self.model {
            enc.u64(addr);
            enc.u64(len);
        }
        enc.u8(self.status.to_code() as u8);
        enc.u64(self.executed);
    }

    /// Restores state captured by [`CommandProcessor::encode_snapshot`].
    ///
    /// # Errors
    ///
    /// Any [`ccai_sim::snapshot::SnapshotError`] on malformed input.
    pub fn restore_snapshot(
        &mut self,
        dec: &mut ccai_sim::snapshot::Decoder<'_>,
    ) -> Result<(), ccai_sim::snapshot::SnapshotError> {
        use ccai_sim::snapshot::SnapshotError;
        let model = if dec.bool()? {
            Some((dec.u64()?, dec.u64()?))
        } else {
            None
        };
        let status = match dec.u8()? {
            0 => CmdStatus::Idle,
            1 => CmdStatus::Done,
            2 => CmdStatus::Error,
            _ => return Err(SnapshotError::Invalid("command status code")),
        };
        let executed = dec.u64()?;
        self.model = model;
        self.status = status;
        self.executed = executed;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_is_deterministic_and_verifiable() {
        let mut mem = DeviceMemory::new(1 << 20);
        mem.write(0x1000, b"weights").unwrap();
        mem.write(0x2000, b"the input").unwrap();

        let mut cp = CommandProcessor::new();
        assert_eq!(
            cp.execute(Command::LoadModel { addr: 0x1000, len: 7 }, &mut mem),
            CmdStatus::Done
        );
        assert_eq!(
            cp.execute(
                Command::RunInference { input: 0x2000, len: 9, output: 0x3000 },
                &mut mem
            ),
            CmdStatus::Done
        );
        let device_result = mem.read(0x3000, 32).unwrap();
        let host_predicted = CommandProcessor::surrogate_inference(b"weights", b"the input");
        assert_eq!(device_result, host_predicted);
    }

    #[test]
    fn inference_without_model_fails() {
        let mut mem = DeviceMemory::new(1024);
        let mut cp = CommandProcessor::new();
        assert_eq!(
            cp.execute(Command::RunInference { input: 0, len: 4, output: 64 }, &mut mem),
            CmdStatus::Error
        );
    }

    #[test]
    fn corrupted_weights_change_result() {
        let a = CommandProcessor::surrogate_inference(b"weights", b"input");
        let b = CommandProcessor::surrogate_inference(b"weightz", b"input");
        let c = CommandProcessor::surrogate_inference(b"weights", b"inpux");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn bad_addresses_error() {
        let mut mem = DeviceMemory::new(1024);
        let mut cp = CommandProcessor::new();
        assert_eq!(
            cp.execute(Command::LoadModel { addr: 4096, len: 10 }, &mut mem),
            CmdStatus::Error
        );
        assert_eq!(
            cp.execute(Command::LoadModel { addr: 0, len: 0 }, &mut mem),
            CmdStatus::Error
        );
    }

    #[test]
    fn wipe_clears_model() {
        let mut mem = DeviceMemory::new(1024);
        let mut cp = CommandProcessor::new();
        cp.execute(Command::LoadModel { addr: 0, len: 8 }, &mut mem);
        assert!(cp.model().is_some());
        cp.wipe();
        assert!(cp.model().is_none());
        assert_eq!(cp.status(), CmdStatus::Idle);
    }
}
