//! The descriptor-driven DMA engine.
//!
//! Drivers program `DmaSrc`/`DmaDst`/`DmaLen` and ring `DmaCtrl`; the
//! engine then issues memory-read TLPs toward host memory (H2D) or posted
//! memory writes (D2H), in max-TLP-sized chunks, exactly the traffic the
//! PCIe-SC's Packet Filter classifies and its handlers decrypt/encrypt.

use crate::memory::DeviceMemory;
use ccai_pcie::{Bdf, Tlp};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// DMA chunk size: one max-sized TLP per chunk.
pub const DMA_CHUNK: u64 = 4096;

/// Maximum read requests in flight (8-bit tag space).
const MAX_INFLIGHT: usize = 128;

/// Transfer direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DmaDirection {
    /// Host memory → device memory (the device issues MemRead TLPs).
    HostToDevice,
    /// Device memory → host memory (the device issues posted MemWrite
    /// TLPs).
    DeviceToHost,
}

/// One programmed DMA transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmaRequest {
    /// Direction of travel.
    pub direction: DmaDirection,
    /// Host physical address.
    pub host_addr: u64,
    /// Device memory address.
    pub device_addr: u64,
    /// Length in bytes.
    pub len: u64,
}

/// Engine status, mirrored in the `DmaStatus` register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DmaStatus {
    /// No transfer programmed.
    #[default]
    Idle,
    /// Transfer in progress.
    Busy,
    /// Transfer complete.
    Done,
    /// Transfer aborted (bad completion, out-of-bounds, …).
    Error,
}

impl DmaStatus {
    /// Register encoding.
    pub fn to_code(self) -> u64 {
        match self {
            DmaStatus::Idle => 0,
            DmaStatus::Busy => 1,
            DmaStatus::Done => 2,
            DmaStatus::Error => 3,
        }
    }
}

struct Inflight {
    host_addr: u64,
    device_addr: u64,
    len: u64,
}

/// The DMA engine of one xPU.
pub struct DmaEngine {
    bdf: Bdf,
    status: DmaStatus,
    outbound: Vec<Tlp>,
    inflight: HashMap<u8, Inflight>,
    next_tag: u8,
    /// Remaining H2D chunks not yet issued: (host_addr, device_addr, len).
    pending_reads: Vec<(u64, u64, u64)>,
    bytes_moved: u64,
    /// Per-transfer re-fetch allowance. 0 (the default) preserves the
    /// legacy behaviour exactly: any bad completion aborts the transfer
    /// and a lost packet leaves the engine stuck `Busy` until the driver
    /// aborts it.
    refetch_limit: u32,
    /// Re-fetches still allowed for the current transfer.
    refetch_budget: u32,
    refetches: u64,
    read_bytes_requested: u64,
}

impl fmt::Debug for DmaEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DmaEngine")
            .field("bdf", &self.bdf)
            .field("status", &self.status)
            .field("inflight", &self.inflight.len())
            .field("bytes_moved", &self.bytes_moved)
            .finish()
    }
}

impl DmaEngine {
    /// Creates an engine issuing requests as `bdf`.
    pub fn new(bdf: Bdf) -> Self {
        DmaEngine {
            bdf,
            status: DmaStatus::Idle,
            outbound: Vec::new(),
            inflight: HashMap::new(),
            next_tag: 0,
            pending_reads: Vec::new(),
            bytes_moved: 0,
            refetch_limit: 0,
            refetch_budget: 0,
            refetches: 0,
            read_bytes_requested: 0,
        }
    }

    /// Current status.
    pub fn status(&self) -> DmaStatus {
        self.status
    }

    /// Total payload bytes moved since creation.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Arms chunk-granular H2D recovery: up to `limit` individual chunk
    /// re-fetches per transfer before the engine gives up and errors out
    /// (at which point the driver's whole-transfer retry takes over).
    pub fn set_refetch_limit(&mut self, limit: u32) {
        self.refetch_limit = limit;
    }

    /// Chunk re-fetches performed since creation.
    pub fn refetches(&self) -> u64 {
        self.refetches
    }

    /// Total bytes requested via H2D read TLPs since creation (counts
    /// re-fetched chunks again, unlike [`DmaEngine::bytes_moved`]).
    pub fn read_bytes_requested(&self) -> u64 {
        self.read_bytes_requested
    }

    /// Starts a transfer. For D2H the payload is read from `memory`
    /// immediately and queued as posted writes; for H2D read requests are
    /// issued in windows of up to 128 outstanding tags.
    ///
    /// # Panics
    ///
    /// Panics if a transfer is already in progress or `len` is zero.
    pub fn start(&mut self, request: DmaRequest, memory: &mut DeviceMemory) {
        assert_ne!(self.status, DmaStatus::Busy, "DMA engine is busy");
        assert!(request.len > 0, "zero-length DMA");
        self.status = DmaStatus::Busy;
        match request.direction {
            DmaDirection::DeviceToHost => {
                let mut offset = 0;
                while offset < request.len {
                    let chunk = DMA_CHUNK.min(request.len - offset);
                    match memory.read(request.device_addr + offset, chunk) {
                        Ok(data) => {
                            self.outbound.push(Tlp::memory_write(
                                self.bdf,
                                request.host_addr + offset,
                                data,
                            ));
                        }
                        Err(_) => {
                            self.status = DmaStatus::Error;
                            return;
                        }
                    }
                    offset += chunk;
                }
                self.bytes_moved += request.len;
                // Posted writes complete immediately from the device's view.
                self.status = DmaStatus::Done;
            }
            DmaDirection::HostToDevice => {
                self.refetch_budget = self.refetch_limit;
                let mut offset = 0;
                while offset < request.len {
                    let chunk = DMA_CHUNK.min(request.len - offset);
                    self.pending_reads.push((
                        request.host_addr + offset,
                        request.device_addr + offset,
                        chunk,
                    ));
                    offset += chunk;
                }
                self.issue_reads();
            }
        }
    }

    fn issue_reads(&mut self) {
        while self.inflight.len() < MAX_INFLIGHT {
            let Some((host_addr, device_addr, len)) = self.pending_reads.pop() else {
                break;
            };
            let tag = self.alloc_tag();
            self.read_bytes_requested += len;
            self.inflight.insert(tag, Inflight { host_addr, device_addr, len });
            self.outbound
                .push(Tlp::memory_read(self.bdf, host_addr, len as u32, tag));
        }
    }

    fn alloc_tag(&mut self) -> u8 {
        loop {
            let tag = self.next_tag;
            self.next_tag = self.next_tag.wrapping_add(1);
            if !self.inflight.contains_key(&tag) {
                return tag;
            }
        }
    }

    /// Drains TLPs the engine wants to put on the bus.
    pub fn poll_outbound(&mut self) -> Vec<Tlp> {
        std::mem::take(&mut self.outbound)
    }

    /// Delivers a read completion; data lands in device memory.
    pub fn deliver_completion(&mut self, tlp: Tlp, memory: &mut DeviceMemory) {
        let tag = tlp.header().tag();
        let Some(inflight) = self.inflight.remove(&tag) else {
            return; // stray completion
        };
        let ok = tlp.header().cpl_status() == Some(ccai_pcie::CplStatus::Success)
            && tlp.payload().len() as u64 == inflight.len;
        if !ok {
            // A bad completion condemns only its own chunk: with budget
            // left, re-queue exactly that chunk for a fresh read instead
            // of aborting the whole transfer.
            if self.refetch_budget > 0 {
                self.refetch_budget -= 1;
                self.refetches += 1;
                self.pending_reads
                    .push((inflight.host_addr, inflight.device_addr, inflight.len));
                self.issue_reads();
                return;
            }
            self.status = DmaStatus::Error;
            self.inflight.clear();
            self.pending_reads.clear();
            return;
        }
        if memory.write(inflight.device_addr, tlp.payload()).is_err() {
            self.status = DmaStatus::Error;
            return;
        }
        self.bytes_moved += inflight.len;
        self.issue_reads();
        if self.inflight.is_empty() && self.pending_reads.is_empty() {
            self.status = DmaStatus::Done;
        }
    }

    /// Recovers an H2D transfer stalled by lost packets. The fabric
    /// processes device reads synchronously, so `Busy` with nothing left
    /// to send and nothing more arriving means the in-flight completions
    /// were lost on the link: re-queue exactly those chunks with fresh
    /// tags (budget permitting) instead of forcing the driver to re-stage
    /// the whole transfer. Returns `true` if it acted (the caller should
    /// re-sync the status register).
    ///
    /// Tags are re-issued in sorted order so the recovery traffic — and
    /// therefore the whole trace — stays a pure function of the seed.
    pub fn recover_stalled(&mut self) -> bool {
        if self.refetch_limit == 0
            || self.status != DmaStatus::Busy
            || !self.outbound.is_empty()
            || self.inflight.is_empty()
        {
            return false;
        }
        let mut tags: Vec<u8> = self.inflight.keys().copied().collect();
        tags.sort_unstable();
        for tag in tags {
            if self.refetch_budget == 0 {
                self.status = DmaStatus::Error;
                self.outbound.clear();
                self.inflight.clear();
                self.pending_reads.clear();
                return true;
            }
            self.refetch_budget -= 1;
            self.refetches += 1;
            let lost = self.inflight.remove(&tag).expect("tag listed");
            self.pending_reads.push((lost.host_addr, lost.device_addr, lost.len));
        }
        self.issue_reads();
        true
    }

    /// Acknowledges a finished transfer, returning the engine to idle.
    pub fn ack(&mut self) {
        if matches!(self.status, DmaStatus::Done | DmaStatus::Error) {
            self.status = DmaStatus::Idle;
        }
    }

    /// Aborts the current transfer unconditionally: discards all pending
    /// and in-flight work and returns to idle. Drivers use this to
    /// recover an engine stuck `Busy` after a request or completion was
    /// lost on the link. Completions for abandoned tags that arrive later
    /// are ignored as stray (the tag is no longer in flight).
    pub fn abort(&mut self) {
        self.status = DmaStatus::Idle;
        self.outbound.clear();
        self.inflight.clear();
        self.pending_reads.clear();
    }

    /// Hard reset (cold boot): drops all state.
    pub fn wipe(&mut self) {
        self.status = DmaStatus::Idle;
        self.outbound.clear();
        self.inflight.clear();
        self.pending_reads.clear();
    }
}

fn encode_dma_tlp(enc: &mut ccai_sim::snapshot::Encoder, tlp: &Tlp) {
    enc.bytes(&tlp.encode());
}

fn decode_dma_tlp(
    dec: &mut ccai_sim::snapshot::Decoder<'_>,
) -> Result<Tlp, ccai_sim::snapshot::SnapshotError> {
    Tlp::decode(&dec.bytes()?)
        .map_err(|_| ccai_sim::snapshot::SnapshotError::Invalid("embedded TLP"))
}

impl DmaEngine {
    /// Serializes the engine mid-transfer: status, queued outbound TLPs,
    /// in-flight read tags (in sorted order), pending chunks and every
    /// counter. The requester BDF is identity, rebuilt by the caller.
    pub fn encode_snapshot(&self, enc: &mut ccai_sim::snapshot::Encoder) {
        enc.u8(self.status.to_code() as u8);
        enc.u64(self.outbound.len() as u64);
        for tlp in &self.outbound {
            encode_dma_tlp(enc, tlp);
        }
        let mut tags: Vec<u8> = self.inflight.keys().copied().collect();
        tags.sort_unstable();
        enc.u64(tags.len() as u64);
        for tag in tags {
            let inflight = &self.inflight[&tag];
            enc.u8(tag);
            enc.u64(inflight.host_addr);
            enc.u64(inflight.device_addr);
            enc.u64(inflight.len);
        }
        enc.u8(self.next_tag);
        enc.u64(self.pending_reads.len() as u64);
        for &(host_addr, device_addr, len) in &self.pending_reads {
            enc.u64(host_addr);
            enc.u64(device_addr);
            enc.u64(len);
        }
        enc.u64(self.bytes_moved);
        enc.u32(self.refetch_limit);
        enc.u32(self.refetch_budget);
        enc.u64(self.refetches);
        enc.u64(self.read_bytes_requested);
    }

    /// Restores state captured by [`DmaEngine::encode_snapshot`].
    ///
    /// # Errors
    ///
    /// Any [`ccai_sim::snapshot::SnapshotError`] on malformed input.
    pub fn restore_snapshot(
        &mut self,
        dec: &mut ccai_sim::snapshot::Decoder<'_>,
    ) -> Result<(), ccai_sim::snapshot::SnapshotError> {
        use ccai_sim::snapshot::SnapshotError;
        let status = match dec.u8()? {
            0 => DmaStatus::Idle,
            1 => DmaStatus::Busy,
            2 => DmaStatus::Done,
            3 => DmaStatus::Error,
            _ => return Err(SnapshotError::Invalid("DMA status code")),
        };
        let n_outbound = dec.seq_len()?;
        let mut outbound = Vec::with_capacity(n_outbound);
        for _ in 0..n_outbound {
            outbound.push(decode_dma_tlp(dec)?);
        }
        let n_inflight = dec.seq_len()?;
        let mut inflight = HashMap::with_capacity(n_inflight);
        for _ in 0..n_inflight {
            let tag = dec.u8()?;
            let host_addr = dec.u64()?;
            let device_addr = dec.u64()?;
            let len = dec.u64()?;
            if inflight
                .insert(tag, Inflight { host_addr, device_addr, len })
                .is_some()
            {
                return Err(SnapshotError::Invalid("duplicate in-flight DMA tag"));
            }
        }
        let next_tag = dec.u8()?;
        let n_pending = dec.seq_len()?;
        let mut pending_reads = Vec::with_capacity(n_pending);
        for _ in 0..n_pending {
            pending_reads.push((dec.u64()?, dec.u64()?, dec.u64()?));
        }
        let bytes_moved = dec.u64()?;
        let refetch_limit = dec.u32()?;
        let refetch_budget = dec.u32()?;
        let refetches = dec.u64()?;
        let read_bytes_requested = dec.u64()?;
        self.status = status;
        self.outbound = outbound;
        self.inflight = inflight;
        self.next_tag = next_tag;
        self.pending_reads = pending_reads;
        self.bytes_moved = bytes_moved;
        self.refetch_limit = refetch_limit;
        self.refetch_budget = refetch_budget;
        self.refetches = refetches;
        self.read_bytes_requested = read_bytes_requested;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bdf() -> Bdf {
        Bdf::new(1, 0, 0)
    }

    #[test]
    fn d2h_queues_posted_writes() {
        let mut mem = DeviceMemory::new(1 << 20);
        mem.write(0x100, &[7; 10000]).unwrap();
        let mut dma = DmaEngine::new(bdf());
        dma.start(
            DmaRequest {
                direction: DmaDirection::DeviceToHost,
                host_addr: 0x5000,
                device_addr: 0x100,
                len: 10000,
            },
            &mut mem,
        );
        assert_eq!(dma.status(), DmaStatus::Done);
        let out = dma.poll_outbound();
        assert_eq!(out.len(), 3); // 4096 + 4096 + 1808
        assert_eq!(out[0].header().address(), Some(0x5000));
        assert_eq!(out[2].payload().len(), 10000 - 2 * 4096);
        assert_eq!(dma.bytes_moved(), 10000);
    }

    #[test]
    fn h2d_issues_reads_and_accepts_completions() {
        let mut mem = DeviceMemory::new(1 << 20);
        let mut dma = DmaEngine::new(bdf());
        dma.start(
            DmaRequest {
                direction: DmaDirection::HostToDevice,
                host_addr: 0x9000,
                device_addr: 0x200,
                len: 6000,
            },
            &mut mem,
        );
        assert_eq!(dma.status(), DmaStatus::Busy);
        let reads = dma.poll_outbound();
        assert_eq!(reads.len(), 2);
        for read in reads {
            let len = read.header().payload_len() as usize;
            let data = vec![0xCD; len];
            let cpl = Tlp::completion_with_data(
                Bdf::new(0, 0, 0),
                read.header().requester(),
                read.header().tag(),
                data,
            );
            dma.deliver_completion(cpl, &mut mem);
        }
        assert_eq!(dma.status(), DmaStatus::Done);
        assert_eq!(mem.read(0x200, 6000).unwrap(), vec![0xCD; 6000]);
    }

    #[test]
    fn h2d_windowing_respects_tag_budget() {
        let mut mem = DeviceMemory::new(4 << 20);
        let mut dma = DmaEngine::new(bdf());
        let len = 4096 * 200; // 200 chunks > 128 tags
        dma.start(
            DmaRequest {
                direction: DmaDirection::HostToDevice,
                host_addr: 0,
                device_addr: 0,
                len,
            },
            &mut mem,
        );
        let first_wave = dma.poll_outbound();
        assert_eq!(first_wave.len(), 128);
        // Completing the wave releases the rest.
        for read in first_wave {
            let cpl = Tlp::completion_with_data(
                Bdf::new(0, 0, 0),
                read.header().requester(),
                read.header().tag(),
                vec![1; read.header().payload_len() as usize],
            );
            dma.deliver_completion(cpl, &mut mem);
        }
        let second_wave = dma.poll_outbound();
        assert_eq!(second_wave.len(), 72);
        for read in second_wave {
            let cpl = Tlp::completion_with_data(
                Bdf::new(0, 0, 0),
                read.header().requester(),
                read.header().tag(),
                vec![1; read.header().payload_len() as usize],
            );
            dma.deliver_completion(cpl, &mut mem);
        }
        assert_eq!(dma.status(), DmaStatus::Done);
        assert_eq!(dma.bytes_moved(), len);
    }

    #[test]
    fn failed_completion_aborts_transfer() {
        let mut mem = DeviceMemory::new(1 << 20);
        let mut dma = DmaEngine::new(bdf());
        dma.start(
            DmaRequest {
                direction: DmaDirection::HostToDevice,
                host_addr: 0,
                device_addr: 0,
                len: 4096,
            },
            &mut mem,
        );
        let read = dma.poll_outbound().remove(0);
        let cpl = Tlp::completion(
            Bdf::new(0, 0, 0),
            read.header().requester(),
            read.header().tag(),
            ccai_pcie::CplStatus::UnsupportedRequest,
        );
        dma.deliver_completion(cpl, &mut mem);
        assert_eq!(dma.status(), DmaStatus::Error);
        dma.ack();
        assert_eq!(dma.status(), DmaStatus::Idle);
    }

    #[test]
    fn d2h_out_of_bounds_errors() {
        let mut mem = DeviceMemory::new(1024);
        let mut dma = DmaEngine::new(bdf());
        dma.start(
            DmaRequest {
                direction: DmaDirection::DeviceToHost,
                host_addr: 0,
                device_addr: 512,
                len: 1024,
            },
            &mut mem,
        );
        assert_eq!(dma.status(), DmaStatus::Error);
    }

    #[test]
    fn stray_completion_ignored() {
        let mut mem = DeviceMemory::new(1024);
        let mut dma = DmaEngine::new(bdf());
        let cpl = Tlp::completion_with_data(Bdf::new(0, 0, 0), bdf(), 99, vec![1]);
        dma.deliver_completion(cpl, &mut mem);
        assert_eq!(dma.status(), DmaStatus::Idle);
    }

    #[test]
    fn bad_completion_refetches_only_its_chunk() {
        let mut mem = DeviceMemory::new(1 << 20);
        let mut dma = DmaEngine::new(bdf());
        dma.set_refetch_limit(2);
        dma.start(
            DmaRequest {
                direction: DmaDirection::HostToDevice,
                host_addr: 0x9000,
                device_addr: 0,
                len: 8192,
            },
            &mut mem,
        );
        let reads = dma.poll_outbound();
        assert_eq!(reads.len(), 2);
        // First chunk fails; second succeeds.
        dma.deliver_completion(
            Tlp::completion(
                Bdf::new(0, 0, 0),
                reads[0].header().requester(),
                reads[0].header().tag(),
                ccai_pcie::CplStatus::UnsupportedRequest,
            ),
            &mut mem,
        );
        dma.deliver_completion(
            Tlp::completion_with_data(
                Bdf::new(0, 0, 0),
                reads[1].header().requester(),
                reads[1].header().tag(),
                vec![0xBB; 4096],
            ),
            &mut mem,
        );
        assert_eq!(dma.status(), DmaStatus::Busy, "failed chunk re-queued, not fatal");
        let refetch = dma.poll_outbound();
        assert_eq!(refetch.len(), 1);
        assert_eq!(refetch[0].header().address(), reads[0].header().address());
        dma.deliver_completion(
            Tlp::completion_with_data(
                Bdf::new(0, 0, 0),
                refetch[0].header().requester(),
                refetch[0].header().tag(),
                vec![0xAA; 4096],
            ),
            &mut mem,
        );
        assert_eq!(dma.status(), DmaStatus::Done);
        assert_eq!(dma.refetches(), 1);
        assert_eq!(dma.bytes_moved(), 8192);
        assert_eq!(dma.read_bytes_requested(), 8192 + 4096);
        // Reads issue in reverse chunk order (`pending_reads` is a
        // stack), so reads[0] was the second chunk.
        assert_eq!(mem.read(0, 4096).unwrap(), vec![0xBB; 4096]);
        assert_eq!(mem.read(4096, 4096).unwrap(), vec![0xAA; 4096]);
    }

    #[test]
    fn refetch_budget_exhaustion_errors() {
        let mut mem = DeviceMemory::new(1 << 20);
        let mut dma = DmaEngine::new(bdf());
        dma.set_refetch_limit(1);
        dma.start(
            DmaRequest {
                direction: DmaDirection::HostToDevice,
                host_addr: 0,
                device_addr: 0,
                len: 4096,
            },
            &mut mem,
        );
        for _ in 0..2 {
            let read = dma.poll_outbound().remove(0);
            dma.deliver_completion(
                Tlp::completion(
                    Bdf::new(0, 0, 0),
                    read.header().requester(),
                    read.header().tag(),
                    ccai_pcie::CplStatus::UnsupportedRequest,
                ),
                &mut mem,
            );
        }
        assert_eq!(dma.status(), DmaStatus::Error, "budget of 1 spent, second failure fatal");
        assert_eq!(dma.refetches(), 1);
    }

    #[test]
    fn recover_stalled_reissues_lost_reads() {
        let mut mem = DeviceMemory::new(1 << 20);
        let mut dma = DmaEngine::new(bdf());
        dma.set_refetch_limit(4);
        dma.start(
            DmaRequest {
                direction: DmaDirection::HostToDevice,
                host_addr: 0x4000,
                device_addr: 0,
                len: 8192,
            },
            &mut mem,
        );
        let reads = dma.poll_outbound();
        assert_eq!(reads.len(), 2);
        // Both completions lost on the link: nothing delivered.
        assert!(dma.recover_stalled());
        assert_eq!(dma.status(), DmaStatus::Busy);
        let reissued = dma.poll_outbound();
        assert_eq!(reissued.len(), 2);
        let mut addrs: Vec<_> = reissued.iter().map(|t| t.header().address()).collect();
        addrs.sort();
        assert_eq!(addrs, vec![Some(0x4000), Some(0x5000)]);
        for read in reissued {
            dma.deliver_completion(
                Tlp::completion_with_data(
                    Bdf::new(0, 0, 0),
                    read.header().requester(),
                    read.header().tag(),
                    vec![0xCC; 4096],
                ),
                &mut mem,
            );
        }
        assert_eq!(dma.status(), DmaStatus::Done);
        assert_eq!(dma.refetches(), 2);
    }

    #[test]
    fn recover_stalled_noop_without_limit() {
        let mut mem = DeviceMemory::new(1 << 20);
        let mut dma = DmaEngine::new(bdf());
        dma.start(
            DmaRequest {
                direction: DmaDirection::HostToDevice,
                host_addr: 0,
                device_addr: 0,
                len: 4096,
            },
            &mut mem,
        );
        let _ = dma.poll_outbound();
        assert!(!dma.recover_stalled(), "legacy default: stalls left to the driver");
        assert_eq!(dma.status(), DmaStatus::Busy);
    }

    #[test]
    #[should_panic(expected = "busy")]
    fn concurrent_start_rejected() {
        let mut mem = DeviceMemory::new(1 << 20);
        let mut dma = DmaEngine::new(bdf());
        let req = DmaRequest {
            direction: DmaDirection::HostToDevice,
            host_addr: 0,
            device_addr: 0,
            len: 4096,
        };
        dma.start(req, &mut mem);
        dma.start(req, &mut mem);
    }
}
