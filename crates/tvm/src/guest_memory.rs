//! TVM guest memory with private/shared page semantics.
//!
//! TVM hardware (Intel TDX and friends) encrypts private guest pages and
//! rejects device DMA into them; drivers must route DMA through pages the
//! guest explicitly *shares* (Linux calls this the swiotlb/bounce path).
//! ccAI builds on exactly this split: the Adaptor stages encrypted
//! workloads in shared bounce buffers while plaintext stays in private
//! memory that neither the host nor any device can touch.

use ccai_pcie::{Bdf, HostMemory};
use std::collections::BTreeMap;
use std::fmt;
use std::ops::Range;

/// TVM guest memory backed by sparse chunks, with a shared-page map and a
/// DMA-visibility boundary.
///
/// Three access paths exist, mirroring the real trust boundaries:
///
/// * [`GuestMemory::read`]/[`write`](GuestMemory::write) — in-guest
///   (trusted) access, reaches everything;
/// * [`HostMemory`] (`dma_read`/`dma_write`) — device access, **shared
///   pages only**;
/// * [`GuestMemory::hypervisor_read`] — the privileged-software
///   adversary, shared pages only (private pages return `None`, modelling
///   the hardware returning ciphertext/poison).
#[derive(Clone)]
pub struct GuestMemory {
    capacity: u64,
    chunks: BTreeMap<u64, Vec<u8>>,
    shared: Vec<Range<u64>>,
    dma_denials: u64,
}

const CHUNK: u64 = 64 * 1024;

impl fmt::Debug for GuestMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GuestMemory")
            .field("capacity", &self.capacity)
            .field("shared_ranges", &self.shared.len())
            .field("dma_denials", &self.dma_denials)
            .finish()
    }
}

impl GuestMemory {
    /// Creates `capacity` bytes of all-private guest memory.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "guest memory capacity must be positive");
        GuestMemory { capacity, chunks: BTreeMap::new(), shared: Vec::new(), dma_denials: 0 }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Marks a range as shared (DMA- and host-visible).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    pub fn share_range(&mut self, range: Range<u64>) {
        assert!(range.start < range.end, "empty shared range");
        assert!(range.end <= self.capacity, "shared range out of bounds");
        self.shared.push(range);
    }

    /// True if `addr` falls in a shared range.
    pub fn is_shared(&self, addr: u64) -> bool {
        self.shared.iter().any(|r| r.contains(&addr))
    }

    /// True if the whole `[addr, addr+len)` range is shared.
    pub fn is_range_shared(&self, addr: u64, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        // All our shared ranges are contiguous entries; a range is shared
        // if one entry covers it completely (bounce windows are single
        // allocations, so this is exact).
        self.shared
            .iter()
            .any(|r| r.start <= addr && addr + len <= r.end)
    }

    /// Count of DMA accesses rejected at the private-memory boundary.
    pub fn dma_denials(&self) -> u64 {
        self.dma_denials
    }

    fn check(&self, addr: u64, len: u64) -> bool {
        addr.checked_add(len).is_some_and(|end| end <= self.capacity)
    }

    /// Trusted in-guest write.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        assert!(self.check(addr, data.len() as u64), "guest write out of bounds");
        let mut offset = 0usize;
        while offset < data.len() {
            let pos = addr + offset as u64;
            let base = pos / CHUNK * CHUNK;
            let within = (pos - base) as usize;
            let take = ((CHUNK as usize) - within).min(data.len() - offset);
            let chunk = self.chunks.entry(base).or_insert_with(|| vec![0; CHUNK as usize]);
            chunk[within..within + take].copy_from_slice(&data[offset..offset + take]);
            offset += take;
        }
    }

    /// Trusted in-guest read (unwritten memory reads as zero).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn read(&self, addr: u64, len: u64) -> Vec<u8> {
        assert!(self.check(addr, len), "guest read out of bounds");
        let mut out = vec![0u8; len as usize];
        let mut offset = 0usize;
        while offset < out.len() {
            let pos = addr + offset as u64;
            let base = pos / CHUNK * CHUNK;
            let within = (pos - base) as usize;
            let take = ((CHUNK as usize) - within).min(out.len() - offset);
            if let Some(chunk) = self.chunks.get(&base) {
                out[offset..offset + take].copy_from_slice(&chunk[within..within + take]);
            }
            offset += take;
        }
        out
    }

    /// The privileged-software adversary's view: `None` for any range
    /// touching private memory (hardware memory encryption), data for
    /// shared ranges.
    pub fn hypervisor_read(&self, addr: u64, len: u64) -> Option<Vec<u8>> {
        if !self.check(addr, len) || !self.is_range_shared(addr, len) {
            return None;
        }
        Some(self.read(addr, len))
    }
}

impl HostMemory for GuestMemory {
    fn dma_read(&mut self, _requester: Bdf, addr: u64, len: usize) -> Option<Vec<u8>> {
        if !self.check(addr, len as u64) || !self.is_range_shared(addr, len as u64) {
            self.dma_denials += 1;
            return None;
        }
        Some(self.read(addr, len as u64))
    }

    fn dma_write(&mut self, _requester: Bdf, addr: u64, data: &[u8]) -> bool {
        if !self.check(addr, data.len() as u64)
            || !self.is_range_shared(addr, data.len() as u64)
        {
            self.dma_denials += 1;
            return false;
        }
        self.write(addr, data);
        true
    }

    fn dma_read_into(&mut self, _requester: Bdf, addr: u64, len: usize, out: &mut Vec<u8>) -> bool {
        if !self.check(addr, len as u64) || !self.is_range_shared(addr, len as u64) {
            self.dma_denials += 1;
            return false;
        }
        out.clear();
        // Unwritten guest memory reads as zero; a recycled buffer holds
        // stale bytes, so zero-fill before copying mapped chunks in.
        out.resize(len, 0);
        let mut offset = 0usize;
        while offset < len {
            let pos = addr + offset as u64;
            let base = pos / CHUNK * CHUNK;
            let within = (pos - base) as usize;
            let take = ((CHUNK as usize) - within).min(len - offset);
            if let Some(chunk) = self.chunks.get(&base) {
                out[offset..offset + take].copy_from_slice(&chunk[within..within + take]);
            }
            offset += take;
        }
        true
    }
}

impl GuestMemory {
    /// Serializes the guest memory image: capacity (identity check),
    /// chunks in address order, shared ranges in declaration order and
    /// the DMA-denial counter.
    pub fn encode_snapshot(&self, enc: &mut ccai_sim::snapshot::Encoder) {
        enc.u64(self.capacity);
        enc.u64(self.chunks.len() as u64);
        for (base, chunk) in &self.chunks {
            enc.u64(*base);
            enc.bytes(chunk);
        }
        enc.u64(self.shared.len() as u64);
        for range in &self.shared {
            enc.u64(range.start);
            enc.u64(range.end);
        }
        enc.u64(self.dma_denials);
    }

    /// Restores an image captured by [`GuestMemory::encode_snapshot`].
    ///
    /// # Errors
    ///
    /// Any [`ccai_sim::snapshot::SnapshotError`] on malformed input or a
    /// capacity mismatch.
    pub fn restore_snapshot(
        &mut self,
        dec: &mut ccai_sim::snapshot::Decoder<'_>,
    ) -> Result<(), ccai_sim::snapshot::SnapshotError> {
        use ccai_sim::snapshot::SnapshotError;
        let capacity = dec.u64()?;
        if capacity != self.capacity {
            return Err(SnapshotError::Invalid("guest memory capacity mismatch"));
        }
        let n_chunks = dec.seq_len()?;
        let mut chunks = BTreeMap::new();
        for _ in 0..n_chunks {
            let base = dec.u64()?;
            let data = dec.bytes()?;
            if data.len() as u64 != CHUNK || !base.is_multiple_of(CHUNK) || base >= capacity {
                return Err(SnapshotError::Invalid("malformed guest memory chunk"));
            }
            chunks.insert(base, data);
        }
        let n_shared = dec.seq_len()?;
        let mut shared = Vec::with_capacity(n_shared);
        for _ in 0..n_shared {
            let start = dec.u64()?;
            let end = dec.u64()?;
            if start >= end || end > capacity {
                return Err(SnapshotError::Invalid("malformed shared range"));
            }
            shared.push(start..end);
        }
        let dma_denials = dec.u64()?;
        self.chunks = chunks;
        self.shared = shared;
        self.dma_denials = dma_denials;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> Bdf {
        Bdf::new(1, 0, 0)
    }

    #[test]
    fn trusted_rw_round_trip() {
        let mut mem = GuestMemory::new(1 << 20);
        mem.write(0x1234, b"private data");
        assert_eq!(mem.read(0x1234, 12), b"private data");
    }

    #[test]
    fn dma_blocked_on_private_pages() {
        let mut mem = GuestMemory::new(1 << 20);
        mem.write(0x1000, b"secret");
        assert_eq!(mem.dma_read(dev(), 0x1000, 6), None);
        assert!(!mem.dma_write(dev(), 0x1000, b"evil"));
        assert_eq!(mem.dma_denials(), 2);
        assert_eq!(mem.read(0x1000, 6), b"secret", "write did not land");
    }

    #[test]
    fn dma_allowed_on_shared_pages() {
        let mut mem = GuestMemory::new(1 << 20);
        mem.share_range(0x8000..0xA000);
        assert!(mem.dma_write(dev(), 0x8000, b"bounce"));
        assert_eq!(mem.dma_read(dev(), 0x8000, 6), Some(b"bounce".to_vec()));
        assert_eq!(mem.dma_denials(), 0);
    }

    #[test]
    fn dma_read_into_matches_dma_read_and_scrubs_stale_bytes() {
        let mut mem = GuestMemory::new(1 << 20);
        mem.share_range(0x8000..0xA000);
        mem.write(0x8000, b"bounce");
        // A recycled buffer with stale content and surplus length: the
        // in-place read must match the allocating read exactly,
        // including zeros for unwritten shared memory past the chunk.
        let mut buf = vec![0xAA; 64];
        let len = 0x1000;
        assert!(mem.dma_read_into(dev(), 0x8000, len, &mut buf));
        assert_eq!(Some(buf.clone()), mem.dma_read(dev(), 0x8000, len));
        // Denials behave identically on both paths and count once each.
        assert!(!mem.dma_read_into(dev(), 0x1000, 4, &mut buf));
        assert_eq!(mem.dma_read(dev(), 0x1000, 4), None);
        assert_eq!(mem.dma_denials(), 2);
    }

    #[test]
    fn dma_straddling_the_boundary_is_blocked() {
        let mut mem = GuestMemory::new(1 << 20);
        mem.share_range(0x8000..0x9000);
        // Range starts shared but runs past the end of the window.
        assert_eq!(mem.dma_read(dev(), 0x8FF0, 0x20), None);
        assert!(!mem.dma_write(dev(), 0x8FF0, &[0u8; 0x20]));
    }

    #[test]
    fn hypervisor_sees_only_shared() {
        let mut mem = GuestMemory::new(1 << 20);
        mem.share_range(0x8000..0x9000);
        mem.write(0x1000, b"tvm secret");
        mem.write(0x8000, b"bounce data");
        assert_eq!(mem.hypervisor_read(0x1000, 10), None);
        assert_eq!(mem.hypervisor_read(0x8000, 11), Some(b"bounce data".to_vec()));
    }

    #[test]
    fn out_of_bounds_dma_denied() {
        let mut mem = GuestMemory::new(0x1000);
        assert_eq!(mem.dma_read(dev(), 0xFFF, 2), None);
        assert_eq!(mem.dma_read(dev(), u64::MAX, 1), None);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn trusted_oob_write_panics() {
        let mut mem = GuestMemory::new(16);
        mem.write(10, &[0; 10]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn share_range_oob_panics() {
        let mut mem = GuestMemory::new(16);
        mem.share_range(0..32);
    }

    #[test]
    fn chunk_boundary_round_trip() {
        let mut mem = GuestMemory::new(1 << 20);
        let addr = CHUNK - 3;
        mem.write(addr, &[1, 2, 3, 4, 5, 6]);
        assert_eq!(mem.read(addr, 6), vec![1, 2, 3, 4, 5, 6]);
    }
}
