//! Vendor user-layer library models.
//!
//! The prototype runs three very different software stacks unmodified:
//! CUDA 12.1 + the NVIDIA 550 driver, tt-buda + ttkmd for the
//! Tenstorrent NPU, and EFSMI + the Enflame driver (§7). What makes them
//! "different" from ccAI's viewpoint is their call discipline — how they
//! probe the device, how eagerly they poll, how they stage work — while
//! all of them bottom out in the same DMA/MMIO primitives.
//!
//! Each stack model here wraps the kernel-level [`XpuDriver`] with a
//! vendor-flavoured ritual. None of them knows ccAI exists; the
//! transparency tests run all three against vanilla and protected
//! platforms and require identical results.

use crate::driver::{DriverError, XpuDriver};
use crate::guest_memory::GuestMemory;
use crate::port::TlpPort;
use crate::stager::DmaStager;
use ccai_xpu::Reg;
use std::fmt;

/// A loaded model handle, as user-layer APIs hand out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelHandle {
    device_addr: u64,
    len: u64,
}

/// The vendor-neutral face of a user-layer stack: load a model, run an
/// inference. Mirrors the level at which applications program real
/// accelerators (`cudaMemcpy`+launch, tt-buda run, EFSMI submit).
pub trait UserStack: fmt::Debug {
    /// The stack's marketing name.
    fn name(&self) -> &'static str;

    /// Initializes the stack against the device.
    ///
    /// # Errors
    ///
    /// Propagates driver probe failures.
    fn initialize(
        &mut self,
        port: &mut dyn TlpPort,
        memory: &mut GuestMemory,
        stager: &mut dyn DmaStager,
    ) -> Result<(), DriverError>;

    /// Uploads and registers a model.
    ///
    /// # Errors
    ///
    /// Propagates DMA/command failures.
    fn load_model(
        &mut self,
        port: &mut dyn TlpPort,
        memory: &mut GuestMemory,
        stager: &mut dyn DmaStager,
        weights: &[u8],
    ) -> Result<ModelHandle, DriverError>;

    /// Runs one inference over `input`.
    ///
    /// # Errors
    ///
    /// Propagates DMA/command failures.
    fn infer(
        &mut self,
        port: &mut dyn TlpPort,
        memory: &mut GuestMemory,
        stager: &mut dyn DmaStager,
        model: ModelHandle,
        input: &[u8],
    ) -> Result<Vec<u8>, DriverError>;
}

const DEV_WEIGHTS: u64 = 0x10_0000;
const DEV_INPUT: u64 = 0x400_0000;
const DEV_OUTPUT: u64 = 0x500_0000;

/// CUDA-like stack: context-heavy. Probes aggressively at init (several
/// register reads), keeps a "context" of the last-seen device state, and
/// double-checks DMA completion with an extra status poll.
#[derive(Debug)]
pub struct CudaLikeStack {
    driver: XpuDriver,
    context_cookie: u64,
}

impl CudaLikeStack {
    /// Wraps a bound driver.
    pub fn new(driver: XpuDriver) -> Self {
        CudaLikeStack { driver, context_cookie: 0 }
    }
}

impl UserStack for CudaLikeStack {
    fn name(&self) -> &'static str {
        "CUDA-like"
    }

    fn initialize(
        &mut self,
        port: &mut dyn TlpPort,
        _memory: &mut GuestMemory,
        _stager: &mut dyn DmaStager,
    ) -> Result<(), DriverError> {
        self.driver.init(port)?;
        // Context creation: probe a handful of status registers.
        let mut cookie = 0u64;
        for reg in [Reg::FirmwareVersion, Reg::DmaStatus, Reg::CmdStatus, Reg::IntStatus] {
            cookie = cookie.wrapping_mul(31).wrapping_add(self.driver.read_register(port, reg)?);
        }
        self.context_cookie = cookie;
        Ok(())
    }

    fn load_model(
        &mut self,
        port: &mut dyn TlpPort,
        memory: &mut GuestMemory,
        stager: &mut dyn DmaStager,
        weights: &[u8],
    ) -> Result<ModelHandle, DriverError> {
        self.driver.load_model(port, memory, stager, weights, DEV_WEIGHTS)?;
        // Paranoid double-check, as CUDA's synchronous APIs do.
        if self.driver.read_register(port, Reg::CmdStatus)? != 1 {
            return Err(DriverError::CommandFailed);
        }
        Ok(ModelHandle { device_addr: DEV_WEIGHTS, len: weights.len() as u64 })
    }

    fn infer(
        &mut self,
        port: &mut dyn TlpPort,
        memory: &mut GuestMemory,
        stager: &mut dyn DmaStager,
        _model: ModelHandle,
        input: &[u8],
    ) -> Result<Vec<u8>, DriverError> {
        self.driver
            .run_inference(port, memory, stager, input, DEV_INPUT, DEV_OUTPUT)
    }
}

/// tt-buda-like stack: compile-then-run. "Compiles" the model (an extra
/// metadata blob uploaded next to the weights) and runs with minimal
/// polling.
#[derive(Debug)]
pub struct TtBudaLikeStack {
    driver: XpuDriver,
    compiled: bool,
}

impl TtBudaLikeStack {
    /// Wraps a bound driver.
    pub fn new(driver: XpuDriver) -> Self {
        TtBudaLikeStack { driver, compiled: false }
    }
}

impl UserStack for TtBudaLikeStack {
    fn name(&self) -> &'static str {
        "tt-buda-like"
    }

    fn initialize(
        &mut self,
        port: &mut dyn TlpPort,
        _memory: &mut GuestMemory,
        _stager: &mut dyn DmaStager,
    ) -> Result<(), DriverError> {
        self.driver.init(port)
    }

    fn load_model(
        &mut self,
        port: &mut dyn TlpPort,
        memory: &mut GuestMemory,
        stager: &mut dyn DmaStager,
        weights: &[u8],
    ) -> Result<ModelHandle, DriverError> {
        // "Compilation": ship a routing/netlist blob ahead of the weights
        // (extra DMA traffic the PCIe-SC must also handle transparently).
        let netlist = vec![0x7Eu8; 2048];
        self.driver
            .dma_to_device(port, memory, stager, &netlist, DEV_WEIGHTS + 0x80_0000)?;
        self.compiled = true;
        self.driver.load_model(port, memory, stager, weights, DEV_WEIGHTS)?;
        Ok(ModelHandle { device_addr: DEV_WEIGHTS, len: weights.len() as u64 })
    }

    fn infer(
        &mut self,
        port: &mut dyn TlpPort,
        memory: &mut GuestMemory,
        stager: &mut dyn DmaStager,
        _model: ModelHandle,
        input: &[u8],
    ) -> Result<Vec<u8>, DriverError> {
        if !self.compiled {
            return Err(DriverError::CommandFailed);
        }
        self.driver
            .run_inference(port, memory, stager, input, DEV_INPUT, DEV_OUTPUT)
    }
}

/// EFSMI-like stack: management-tool flavour. Queries device health
/// before every operation (the `efsmi` utility habit) and uploads inputs
/// in two halves.
#[derive(Debug)]
pub struct EfsmiLikeStack {
    driver: XpuDriver,
    health_checks: u64,
}

impl EfsmiLikeStack {
    /// Wraps a bound driver.
    pub fn new(driver: XpuDriver) -> Self {
        EfsmiLikeStack { driver, health_checks: 0 }
    }

    fn health_check(&mut self, port: &mut dyn TlpPort) -> Result<(), DriverError> {
        self.health_checks += 1;
        let _ = self.driver.read_register(port, Reg::IntStatus)?;
        let _ = self.driver.read_register(port, Reg::DmaStatus)?;
        Ok(())
    }
}

impl UserStack for EfsmiLikeStack {
    fn name(&self) -> &'static str {
        "EFSMI-like"
    }

    fn initialize(
        &mut self,
        port: &mut dyn TlpPort,
        _memory: &mut GuestMemory,
        _stager: &mut dyn DmaStager,
    ) -> Result<(), DriverError> {
        self.driver.init(port)?;
        self.health_check(port)
    }

    fn load_model(
        &mut self,
        port: &mut dyn TlpPort,
        memory: &mut GuestMemory,
        stager: &mut dyn DmaStager,
        weights: &[u8],
    ) -> Result<ModelHandle, DriverError> {
        self.health_check(port)?;
        self.driver.load_model(port, memory, stager, weights, DEV_WEIGHTS)?;
        Ok(ModelHandle { device_addr: DEV_WEIGHTS, len: weights.len() as u64 })
    }

    fn infer(
        &mut self,
        port: &mut dyn TlpPort,
        memory: &mut GuestMemory,
        stager: &mut dyn DmaStager,
        _model: ModelHandle,
        input: &[u8],
    ) -> Result<Vec<u8>, DriverError> {
        self.health_check(port)?;
        // Two-stage input upload: halves land adjacently, then one run.
        let mid = input.len() / 2;
        if mid > 0 && input.len() - mid > 0 {
            self.driver.dma_to_device(port, memory, stager, &input[..mid], DEV_INPUT)?;
            self.driver
                .dma_to_device(port, memory, stager, &input[mid..], DEV_INPUT + mid as u64)?;
            // Command registers point at the already-uploaded input.
            self.driver.write_register(port, Reg::CmdArg0, DEV_INPUT)?;
            self.driver.write_register(port, Reg::CmdArg1, input.len() as u64)?;
            self.driver.write_register(port, Reg::CmdArg2, DEV_OUTPUT)?;
            self.driver.write_register(port, Reg::CmdDoorbell, 0)?;
            self.driver.write_register(port, Reg::CmdDoorbell, 2)?;
            if self.driver.read_register_expect(port, Reg::CmdStatus, 1)? != 1 {
                return Err(DriverError::CommandFailed);
            }
            self.driver.dma_from_device(port, memory, stager, DEV_OUTPUT, 32)
        } else {
            self.driver
                .run_inference(port, memory, stager, input, DEV_INPUT, DEV_OUTPUT)
        }
    }
}

/// Builds the stack a vendor's devices ship with.
pub fn stack_for_vendor(vendor: &str, driver: XpuDriver) -> Box<dyn UserStack> {
    match vendor {
        "NVIDIA" => Box::new(CudaLikeStack::new(driver)),
        "Tenstorrent" => Box::new(TtBudaLikeStack::new(driver)),
        _ => Box::new(EfsmiLikeStack::new(driver)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stager::IdentityStager;
    use ccai_pcie::{Bdf, Fabric, PortId};
    use ccai_xpu::{CommandProcessor, Xpu, XpuSpec};

    fn rig(spec: XpuSpec) -> (Fabric, GuestMemory, IdentityStager, XpuDriver) {
        let xpu = Xpu::new(spec, Bdf::new(0x17, 0, 0), 0x8000_0000);
        let driver = XpuDriver::for_xpu(Bdf::new(0, 2, 0), &xpu);
        let window = xpu.address_window();
        let mut fabric = Fabric::new();
        fabric.attach(PortId(0), Box::new(xpu));
        fabric.map_range(window, PortId(0));
        let mut memory = GuestMemory::new(1 << 24);
        memory.share_range(0x10_0000..0x80_0000);
        (fabric, memory, IdentityStager::new(0x10_0000, 0x70_0000), driver)
    }

    fn exercise(stack: &mut dyn UserStack, spec: XpuSpec) {
        let (mut fabric, mut memory, mut stager, _driver) = rig(spec);
        stack
            .initialize(&mut fabric, &mut memory, &mut stager)
            .unwrap_or_else(|e| panic!("{}: init {e}", stack.name()));
        let model = stack
            .load_model(&mut fabric, &mut memory, &mut stager, b"vendor weights")
            .unwrap();
        let result = stack
            .infer(&mut fabric, &mut memory, &mut stager, model, b"vendor input")
            .unwrap();
        assert_eq!(
            result,
            CommandProcessor::surrogate_inference(b"vendor weights", b"vendor input"),
            "{}",
            stack.name()
        );
    }

    #[test]
    fn cuda_like_stack_runs() {
        let (_, _, _, driver) = rig(XpuSpec::a100());
        let mut stack = CudaLikeStack::new(driver);
        exercise(&mut stack, XpuSpec::a100());
    }

    #[test]
    fn tt_buda_like_stack_runs() {
        let (_, _, _, driver) = rig(XpuSpec::tenstorrent_n150d());
        let mut stack = TtBudaLikeStack::new(driver);
        exercise(&mut stack, XpuSpec::tenstorrent_n150d());
    }

    #[test]
    fn efsmi_like_stack_runs() {
        let (_, _, _, driver) = rig(XpuSpec::enflame_s60());
        let mut stack = EfsmiLikeStack::new(driver);
        exercise(&mut stack, XpuSpec::enflame_s60());
    }

    #[test]
    fn uninitialized_tt_buda_refuses_to_run() {
        let (mut fabric, mut memory, mut stager, driver) = rig(XpuSpec::tenstorrent_n150d());
        let mut stack = TtBudaLikeStack::new(driver);
        stack.initialize(&mut fabric, &mut memory, &mut stager).unwrap();
        let bogus = ModelHandle { device_addr: 0, len: 0 };
        assert_eq!(
            stack
                .infer(&mut fabric, &mut memory, &mut stager, bogus, b"x")
                .unwrap_err(),
            DriverError::CommandFailed,
            "running without compilation must fail"
        );
    }

    #[test]
    fn stack_for_vendor_picks_the_right_flavor() {
        let (_, _, _, d1) = rig(XpuSpec::a100());
        let (_, _, _, d2) = rig(XpuSpec::tenstorrent_n150d());
        let (_, _, _, d3) = rig(XpuSpec::enflame_s60());
        assert_eq!(stack_for_vendor("NVIDIA", d1).name(), "CUDA-like");
        assert_eq!(stack_for_vendor("Tenstorrent", d2).name(), "tt-buda-like");
        assert_eq!(stack_for_vendor("Enflame", d3).name(), "EFSMI-like");
    }
}
