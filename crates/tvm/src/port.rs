//! The TLP submission port — where the kernel stands between drivers
//! and the bus.
//!
//! Real drivers do not own the PCIe fabric; their MMIO accesses traverse
//! kernel-owned mappings and their DMA staging goes through kernel APIs.
//! [`TlpPort`] captures that seam: vanilla kernels pass requests straight
//! to the fabric ([`TlpPort`] is implemented for
//! [`ccai_pcie::Fabric`]); ccAI's Adaptor wraps the same port to
//! mirror write-protected MMIO traffic with integrity tags — with zero
//! driver changes.

use ccai_pcie::{Fabric, HostMemory, Tlp};
use std::fmt;

/// A port through which kernel-side code submits TLPs and pumps
/// device-initiated traffic.
pub trait TlpPort: fmt::Debug {
    /// Submits a host-originated request; returns responses that reached
    /// the host.
    fn request(&mut self, tlp: Tlp) -> Vec<Tlp>;

    /// Pumps device-initiated traffic into `memory`; returns TLPs moved.
    fn pump(&mut self, memory: &mut dyn HostMemory) -> usize;
}

impl TlpPort for Fabric {
    fn request(&mut self, tlp: Tlp) -> Vec<Tlp> {
        self.host_request(tlp)
    }

    fn pump(&mut self, memory: &mut dyn HostMemory) -> usize {
        Fabric::pump(self, memory)
    }
}
