//! Unmodified vendor-style xPU driver models.
//!
//! Each real xPU ships its own software stack (CUDA + nvidia.ko, tt-buda +
//! ttkmd, EFSMI + the Enflame driver, §7). What they share is the shape of
//! their work: enumerate the device, enable bus mastering, move buffers by
//! DMA, poke vendor-specific registers, ring doorbells. [`XpuDriver`]
//! models that shape against the vendor-specific register layout of its
//! device.
//!
//! **Transparency invariant:** this code contains zero ccAI knowledge. It
//! calls the kernel's [`DmaStager`] seam for buffer staging — exactly the
//! code path it uses on a vanilla TVM — and behaves byte-identically
//! whether the stager is the vanilla [`IdentityStager`] or ccAI's
//! encrypting Adaptor, and whether or not a PCIe-SC sits in front of the
//! device.
//!
//! [`IdentityStager`]: crate::stager::IdentityStager

use crate::guest_memory::GuestMemory;
use crate::port::TlpPort;
use crate::stager::{DmaStager, StagedBuffer};
use ccai_pcie::{seal_ctrl_envelope, Bdf, PcieDevice, Tlp, TlpType};
use ccai_sim::{Severity, SimDuration, Telemetry};
use ccai_xpu::{Reg, RegisterFile};
use std::cell::Cell;
use std::fmt;

/// MMIO read tags rotate through `1..=MAX_READ_TAG` so a stale delayed
/// completion (control-path fault) can never satisfy a newer read. The
/// range is disjoint from the tag spaces other host-side requesters use.
const MAX_READ_TAG: u8 = 0x3F;

/// Errors surfaced by driver operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriverError {
    /// The device did not answer an MMIO/config read.
    NoResponse,
    /// A DMA transfer ended in the error state.
    DmaFailed,
    /// A command reported failure via `CmdStatus`.
    CommandFailed,
    /// Device enumeration found the wrong device.
    WrongDevice {
        /// Vendor ID read from config space.
        vendor_id: u16,
    },
    /// Data recovered from the device failed integrity verification.
    IntegrityFailed,
}

impl fmt::Display for DriverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriverError::NoResponse => write!(f, "device did not respond"),
            DriverError::DmaFailed => write!(f, "DMA transfer failed"),
            DriverError::CommandFailed => write!(f, "device command failed"),
            DriverError::WrongDevice { vendor_id } => {
                write!(f, "unexpected device (vendor {vendor_id:#06x})")
            }
            DriverError::IntegrityFailed => write!(f, "device output failed integrity check"),
        }
    }
}

impl std::error::Error for DriverError {}

/// How the driver retries failed DMA transfers.
///
/// Real driver stacks survive transient link errors (receiver errors, bad
/// LCRC, completion timeouts) by retrying the transfer after the engine is
/// quiesced. The policy bounds both the number of attempts and the idle
/// backoff between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per transfer (first try included). Must be ≥ 1.
    pub max_attempts: u32,
    /// Base of the exponential backoff: attempt `n` waits for
    /// `backoff_unit × min(backoff_base^n, 64)` before re-staging.
    pub backoff_base: u32,
    /// Sim-time length of one backoff round. With a telemetry hub
    /// attached the wait is a measured sim-time deadline charged as idle
    /// time against the driver's tenant; without one it degrades to the
    /// same number of idle pump rounds.
    pub backoff_unit: SimDuration,
}

impl RetryPolicy {
    /// Default sim-time length of one backoff round.
    pub const DEFAULT_BACKOFF_UNIT: SimDuration = SimDuration::from_micros(50);

    /// Hard cap on `backoff_base^attempt`, bounding the longest wait.
    pub const MAX_BACKOFF_ROUNDS: u32 = 64;

    /// Backoff rounds for the given attempt: `min(base^attempt, 64)`.
    pub fn rounds_for_attempt(&self, attempt: u32) -> u32 {
        self.backoff_base
            .saturating_pow(attempt)
            .min(Self::MAX_BACKOFF_ROUNDS)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            backoff_base: 2,
            backoff_unit: Self::DEFAULT_BACKOFF_UNIT,
        }
    }
}

/// A vendor driver bound to one xPU instance.
///
/// Construction captures what a real driver learns at probe time: the
/// device's BDF, BAR addresses and its register layout.
pub struct XpuDriver {
    tvm_bdf: Bdf,
    device_bdf: Bdf,
    expected_vendor_id: u16,
    registers: RegisterFile,
    bar0: u64,
    /// BAR1 base, captured at probe time (bulk aperture; reserved for
    /// aperture-based access paths).
    pub bar1: u64,
    retry: RetryPolicy,
    retries: Cell<u64>,
    /// Sequence number stamped onto every logical control write (the
    /// [`ccai_pcie::ctrlseq`] envelope); re-sends of the same logical
    /// write reuse the same number so receivers converge to exactly-once.
    ctrl_seq: Cell<u64>,
    control_retries: Cell<u64>,
    read_tag: Cell<u8>,
    telemetry: Option<Telemetry>,
}

impl fmt::Debug for XpuDriver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("XpuDriver")
            .field("device", &self.device_bdf)
            .field("bar0", &format_args!("{:#x}", self.bar0))
            .finish()
    }
}

impl XpuDriver {
    /// Binds a driver to a device.
    pub fn bind(
        tvm_bdf: Bdf,
        device_bdf: Bdf,
        expected_vendor_id: u16,
        registers: RegisterFile,
        bar0: u64,
        bar1: u64,
    ) -> XpuDriver {
        XpuDriver {
            tvm_bdf,
            device_bdf,
            expected_vendor_id,
            registers,
            bar0,
            bar1,
            retry: RetryPolicy::default(),
            retries: Cell::new(0),
            ctrl_seq: Cell::new(0),
            control_retries: Cell::new(0),
            read_tag: Cell::new(0),
            telemetry: None,
        }
    }

    /// Connects the driver to the telemetry hub: retries become trace
    /// events and backoff becomes a sim-time deadline charged as idle
    /// time against this driver's TVM (so per-tenant starvation under
    /// sustained faults is a measured quantity).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = Some(telemetry);
    }

    /// Replaces the DMA retry policy.
    ///
    /// # Panics
    ///
    /// Panics if `policy.max_attempts` is zero.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        assert!(policy.max_attempts >= 1, "retry policy needs at least one attempt");
        self.retry = policy;
    }

    /// Total DMA retries performed over the driver's lifetime (transfers
    /// that needed more than one attempt contribute one count per extra
    /// attempt).
    pub fn dma_retries(&self) -> u64 {
        self.retries.get()
    }

    /// Total control-plane retries (re-sent register writes and re-issued
    /// MMIO/config reads) over the driver's lifetime. Zero on a reliable
    /// control path.
    pub fn control_retries(&self) -> u64 {
        self.control_retries.get()
    }

    /// Convenience: binds to an [`ccai_xpu::Xpu`] before it is boxed into
    /// the fabric.
    pub fn for_xpu(tvm_bdf: Bdf, xpu: &ccai_xpu::Xpu) -> XpuDriver {
        XpuDriver::bind(
            tvm_bdf,
            xpu.bdf(),
            xpu.config_space().vendor_id(),
            xpu.registers().clone(),
            xpu.bar0_base(),
            xpu.bar1_base(),
        )
    }

    /// The device this driver controls.
    pub fn device_bdf(&self) -> Bdf {
        self.device_bdf
    }

    /// Probes config space and enables memory decoding + bus mastering.
    ///
    /// # Errors
    ///
    /// [`DriverError::WrongDevice`] if the vendor ID mismatches;
    /// [`DriverError::NoResponse`] if config reads go unanswered.
    pub fn init(&self, port: &mut dyn TlpPort) -> Result<(), DriverError> {
        let mut attempt = 0u32;
        let vendor_id = loop {
            let tag = self.next_read_tag();
            let replies =
                port.request(Tlp::config_read(self.tvm_bdf, self.device_bdf, 0, tag));
            let reply = replies.iter().find(|r| {
                r.header().tlp_type() == TlpType::CompletionData
                    && r.header().tag() == tag
                    && r.payload().len() >= 4
            });
            if let Some(reply) = reply {
                break u16::from_le_bytes([reply.payload()[0], reply.payload()[1]]);
            }
            attempt += 1;
            if attempt >= self.retry.max_attempts {
                return Err(DriverError::NoResponse);
            }
            self.note_control_retry("config_read", attempt);
        };
        if vendor_id != self.expected_vendor_id {
            return Err(DriverError::WrongDevice { vendor_id });
        }
        // Enable memory space + bus master in the command register.
        // Config writes are posted, so re-send until the command register
        // reads back with both bits set.
        let mut attempt = 0u32;
        loop {
            port.request(Tlp::config_write(
                self.tvm_bdf,
                self.device_bdf,
                0x04,
                vec![0x06, 0x00, 0x00, 0x00],
            ));
            let tag = self.next_read_tag();
            let replies =
                port.request(Tlp::config_read(self.tvm_bdf, self.device_bdf, 0x04, tag));
            let enabled = replies.iter().any(|r| {
                r.header().tlp_type() == TlpType::CompletionData
                    && r.header().tag() == tag
                    && r.payload().first().is_some_and(|b| b & 0x06 == 0x06)
            });
            if enabled {
                return Ok(());
            }
            attempt += 1;
            if attempt >= self.retry.max_attempts {
                return Err(DriverError::NoResponse);
            }
            self.note_control_retry("config_write", attempt);
        }
    }

    /// Writes a device register over MMIO with exactly-once semantics.
    ///
    /// Every logical write carries a fresh [`ccai_pcie::ctrlseq`] sequence
    /// number and is verified by read-back; a dropped or corrupted write
    /// is re-sent (same sequence number, so envelope-aware receivers
    /// suppress duplicates) up to [`RetryPolicy::max_attempts`] times.
    /// `ResetCtrl` is exempt — a reset wipes the register file, so there
    /// is nothing to read back.
    ///
    /// # Errors
    ///
    /// [`DriverError::NoResponse`] if the register never reads back the
    /// written value.
    pub fn write_register(
        &self,
        port: &mut dyn TlpPort,
        reg: Reg,
        value: u64,
    ) -> Result<(), DriverError> {
        let addr = self.bar0 + self.registers.offset(reg);
        let seq = self.ctrl_seq.get() + 1;
        self.ctrl_seq.set(seq);
        let payload = seal_ctrl_envelope(&value.to_le_bytes(), seq);
        if matches!(reg, Reg::ResetCtrl) {
            port.request(Tlp::memory_write(self.tvm_bdf, addr, payload));
            return Ok(());
        }
        let mut attempt = 0u32;
        loop {
            port.request(Tlp::memory_write(self.tvm_bdf, addr, payload.clone()));
            if self.read_register(port, reg) == Ok(value) {
                return Ok(());
            }
            attempt += 1;
            if attempt >= self.retry.max_attempts {
                return Err(DriverError::NoResponse);
            }
            self.note_control_retry("write_verify", attempt);
        }
    }

    /// Reads a device register over MMIO.
    ///
    /// Each attempt uses a fresh tag and only accepts a data completion
    /// carrying exactly that tag and an 8-byte payload, so stale delayed
    /// completions from earlier reads are rejected; unanswered reads are
    /// re-issued up to [`RetryPolicy::max_attempts`] times.
    ///
    /// # Errors
    ///
    /// [`DriverError::NoResponse`] if no matching completion arrives.
    pub fn read_register(&self, port: &mut dyn TlpPort, reg: Reg) -> Result<u64, DriverError> {
        let addr = self.bar0 + self.registers.offset(reg);
        let mut attempt = 0u32;
        loop {
            let tag = self.next_read_tag();
            let replies = port.request(Tlp::memory_read(self.tvm_bdf, addr, 8, tag));
            let reply = replies.iter().find(|r| {
                r.header().tlp_type() == TlpType::CompletionData
                    && r.header().tag() == tag
                    && r.payload().len() == 8
            });
            if let Some(reply) = reply {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(reply.payload());
                return Ok(u64::from_le_bytes(bytes));
            }
            attempt += 1;
            if attempt >= self.retry.max_attempts {
                return Err(DriverError::NoResponse);
            }
            self.note_control_retry("read", attempt);
        }
    }

    /// Reads `reg` until it holds `expect` (a corrupted completion can
    /// misreport a value; re-reading separates transient lies from real
    /// state), returning the last observed value either way so callers
    /// can act on a genuine mismatch.
    ///
    /// # Errors
    ///
    /// Propagates [`DriverError::NoResponse`] from the underlying reads.
    pub fn read_register_expect(
        &self,
        port: &mut dyn TlpPort,
        reg: Reg,
        expect: u64,
    ) -> Result<u64, DriverError> {
        let mut attempt = 0u32;
        loop {
            let value = self.read_register(port, reg)?;
            if value == expect {
                return Ok(value);
            }
            attempt += 1;
            if attempt >= self.retry.max_attempts {
                return Ok(value);
            }
            self.note_control_retry("read_expect", attempt);
        }
    }

    fn next_read_tag(&self) -> u8 {
        let tag = self.read_tag.get() % MAX_READ_TAG + 1;
        self.read_tag.set(tag);
        tag
    }

    fn note_control_retry(&self, what: &str, attempt: u32) {
        self.control_retries.set(self.control_retries.get() + 1);
        if let Some(telemetry) = &self.telemetry {
            telemetry.record(
                Severity::Warn,
                "driver.control_retry",
                Some(u32::from(self.tvm_bdf.to_u16())),
                None,
                format!("target={what} attempt={attempt}"),
            );
            telemetry.counter_add("driver.control_retries", 1);
        }
    }

    /// Copies `data` into device memory at `device_addr` via DMA
    /// (stage → program engine → pump → check status), retrying per the
    /// driver's [`RetryPolicy`] if the engine stalls or errors.
    ///
    /// # Errors
    ///
    /// [`DriverError::DmaFailed`] if every attempt fails.
    pub fn dma_to_device(
        &self,
        port: &mut dyn TlpPort,
        memory: &mut GuestMemory,
        stager: &mut dyn DmaStager,
        data: &[u8],
        device_addr: u64,
    ) -> Result<(), DriverError> {
        let mut attempt = 0u32;
        loop {
            let staged = stager.stage_to_device(port, memory, data);
            // Pre-clear the doorbell: `DmaCtrl` must verifiably read 0
            // before the trigger write, otherwise a stale 1 from the
            // previous transfer could make a *dropped* trigger write
            // pass read-back and a stale Done status fake completion.
            let programmed = self
                .write_register(port, Reg::DmaCtrl, 0)
                .and_then(|()| self.write_register(port, Reg::DmaSrc, staged.device_addr))
                .and_then(|()| self.write_register(port, Reg::DmaDst, device_addr))
                .and_then(|()| self.write_register(port, Reg::DmaLen, staged.len))
                .and_then(|()| self.write_register(port, Reg::DmaCtrl, 1)); // H2D
            if programmed.is_ok() {
                while port.pump(memory) > 0 {}
                if self.read_register(port, Reg::DmaStatus) == Ok(2) {
                    return Ok(());
                }
            }
            attempt += 1;
            if attempt >= self.retry.max_attempts {
                return Err(DriverError::DmaFailed);
            }
            self.quiesce_and_back_off(port, memory, stager, &staged, attempt);
        }
    }

    /// Copies `len` bytes from device memory at `device_addr` back to the
    /// host via DMA, returning the data. Engine errors *and* integrity
    /// failures on the recovered data are retried per the driver's
    /// [`RetryPolicy`]; each retry uses a fresh landing buffer.
    ///
    /// # Errors
    ///
    /// [`DriverError::DmaFailed`] if the engine keeps failing,
    /// [`DriverError::IntegrityFailed`] if recovery keeps failing
    /// verification.
    pub fn dma_from_device(
        &self,
        port: &mut dyn TlpPort,
        memory: &mut GuestMemory,
        stager: &mut dyn DmaStager,
        device_addr: u64,
        len: u64,
    ) -> Result<Vec<u8>, DriverError> {
        let mut attempt = 0u32;
        loop {
            let landing = stager.alloc_from_device(port, memory, len);
            let programmed = self
                .write_register(port, Reg::DmaCtrl, 0) // pre-clear (see dma_to_device)
                .and_then(|()| self.write_register(port, Reg::DmaSrc, device_addr))
                .and_then(|()| self.write_register(port, Reg::DmaDst, landing.device_addr))
                .and_then(|()| self.write_register(port, Reg::DmaLen, len))
                .and_then(|()| self.write_register(port, Reg::DmaCtrl, 2)); // D2H
            let failure = if programmed.is_ok() {
                while port.pump(memory) > 0 {}
                match self.read_register(port, Reg::DmaStatus) {
                    Ok(2) => match stager.recover_from_device(port, memory, landing) {
                        Ok(data) => return Ok(data),
                        Err(_) => DriverError::IntegrityFailed,
                    },
                    _ => DriverError::DmaFailed,
                }
            } else {
                DriverError::DmaFailed
            };
            attempt += 1;
            if attempt >= self.retry.max_attempts {
                return Err(failure);
            }
            self.quiesce_and_back_off(port, memory, stager, &landing, attempt);
        }
    }

    /// Post-failure cleanup between DMA attempts: abort the engine, drain
    /// in-flight traffic, let the staging layer invalidate the dead buffer
    /// (rekeying on the confidential path), then back off exponentially.
    ///
    /// With a telemetry hub attached, backoff is a **sim-time deadline**:
    /// the driver idles until `now + backoff_unit × min(base^attempt, 64)`
    /// and the wait is charged as idle time against its tenant, making
    /// starvation under sustained faults measurable. Without telemetry the
    /// wait degrades to the same number of idle pump rounds.
    fn quiesce_and_back_off(
        &self,
        port: &mut dyn TlpPort,
        memory: &mut GuestMemory,
        stager: &mut dyn DmaStager,
        staged: &StagedBuffer,
        attempt: u32,
    ) {
        self.retries.set(self.retries.get() + 1);
        let tenant = Some(u32::from(self.tvm_bdf.to_u16()));
        if let Some(telemetry) = &self.telemetry {
            telemetry.record(
                Severity::Warn,
                "driver.retry",
                tenant,
                None,
                format!("attempt={attempt} device={}", self.device_bdf),
            );
            telemetry.counter_add("driver.retries", 1);
        }
        // Abort the engine; verification failure here just means the next
        // attempt's pre-clear will finish the job.
        let _ = self.write_register(port, Reg::DmaCtrl, 0);
        while port.pump(memory) > 0 {}
        stager.transfer_failed(port, memory, staged);
        let rounds = self.retry.rounds_for_attempt(attempt);
        match &self.telemetry {
            Some(telemetry) => {
                let deadline =
                    telemetry.now() + self.retry.backoff_unit * u64::from(rounds);
                let waited = telemetry.idle_until(deadline, tenant);
                telemetry.record(
                    Severity::Info,
                    "driver.backoff",
                    tenant,
                    None,
                    format!("attempt={attempt} waited_picos={}", waited.as_picos()),
                );
            }
            None => {
                for _ in 0..rounds {
                    let _ = port.pump(memory);
                }
            }
        }
    }

    /// Loads a model: DMA the weights to the device, then issue
    /// `LoadModel`.
    ///
    /// # Errors
    ///
    /// Propagates DMA failures; [`DriverError::CommandFailed`] if the
    /// device rejects the command.
    pub fn load_model(
        &self,
        port: &mut dyn TlpPort,
        memory: &mut GuestMemory,
        stager: &mut dyn DmaStager,
        weights: &[u8],
        device_addr: u64,
    ) -> Result<(), DriverError> {
        self.dma_to_device(port, memory, stager, weights, device_addr)?;
        self.write_register(port, Reg::CmdArg0, device_addr)?;
        self.write_register(port, Reg::CmdArg1, weights.len() as u64)?;
        // Pre-clear the doorbell so the 0→1 read-back transition proves
        // the trigger write (and therefore the command) executed.
        self.write_register(port, Reg::CmdDoorbell, 0)?;
        self.write_register(port, Reg::CmdDoorbell, 1)?;
        match self.read_register_expect(port, Reg::CmdStatus, 1)? {
            1 => Ok(()),
            _ => Err(DriverError::CommandFailed),
        }
    }

    /// Runs inference: DMA the input up, ring `RunInference`, DMA the
    /// 32-byte result back.
    ///
    /// # Errors
    ///
    /// Propagates DMA and command failures.
    pub fn run_inference(
        &self,
        port: &mut dyn TlpPort,
        memory: &mut GuestMemory,
        stager: &mut dyn DmaStager,
        input: &[u8],
        input_device_addr: u64,
        output_device_addr: u64,
    ) -> Result<Vec<u8>, DriverError> {
        self.dma_to_device(port, memory, stager, input, input_device_addr)?;
        self.write_register(port, Reg::CmdArg0, input_device_addr)?;
        self.write_register(port, Reg::CmdArg1, input.len() as u64)?;
        self.write_register(port, Reg::CmdArg2, output_device_addr)?;
        self.write_register(port, Reg::CmdDoorbell, 0)?; // pre-clear (see load_model)
        self.write_register(port, Reg::CmdDoorbell, 2)?;
        if self.read_register_expect(port, Reg::CmdStatus, 1)? != 1 {
            return Err(DriverError::CommandFailed);
        }
        self.dma_from_device(port, memory, stager, output_device_addr, 32)
    }
}

impl XpuDriver {
    /// Serializes the driver's mutable state: retry policy and the
    /// counters/cursors that sequence its control traffic. Probe-time
    /// identity (BDFs, BARs, register layout) is rebuilt, not captured.
    pub fn encode_snapshot(&self, enc: &mut ccai_sim::snapshot::Encoder) {
        enc.u32(self.retry.max_attempts);
        enc.u32(self.retry.backoff_base);
        enc.u64(self.retry.backoff_unit.as_picos());
        enc.u64(self.retries.get());
        enc.u64(self.ctrl_seq.get());
        enc.u64(self.control_retries.get());
        enc.u8(self.read_tag.get());
    }

    /// Restores state captured by [`XpuDriver::encode_snapshot`].
    ///
    /// # Errors
    ///
    /// Any [`ccai_sim::snapshot::SnapshotError`] on malformed input.
    pub fn restore_snapshot(
        &mut self,
        dec: &mut ccai_sim::snapshot::Decoder<'_>,
    ) -> Result<(), ccai_sim::snapshot::SnapshotError> {
        use ccai_sim::snapshot::SnapshotError;
        let max_attempts = dec.u32()?;
        if max_attempts == 0 {
            return Err(SnapshotError::Invalid("retry policy needs an attempt"));
        }
        let backoff_base = dec.u32()?;
        let backoff_unit = SimDuration::from_picos(dec.u64()?);
        let retries = dec.u64()?;
        let ctrl_seq = dec.u64()?;
        let control_retries = dec.u64()?;
        let read_tag = dec.u8()?;
        if read_tag > MAX_READ_TAG {
            return Err(SnapshotError::Invalid("read tag out of range"));
        }
        self.retry = RetryPolicy { max_attempts, backoff_base, backoff_unit };
        self.retries.set(retries);
        self.ctrl_seq.set(ctrl_seq);
        self.control_retries.set(control_retries);
        self.read_tag.set(read_tag);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stager::IdentityStager;
    use ccai_pcie::{Fabric, PortId};
    use ccai_xpu::{CommandProcessor, Xpu, XpuSpec};

    fn tvm() -> Bdf {
        Bdf::new(0, 2, 0)
    }

    fn setup() -> (Fabric, GuestMemory, IdentityStager, XpuDriver) {
        let xpu = Xpu::new(XpuSpec::a100(), Bdf::new(0x17, 0, 0), 0x8000_0000);
        let driver = XpuDriver::for_xpu(tvm(), &xpu);
        let window = xpu.address_window();
        let mut fabric = Fabric::new();
        fabric.attach(PortId(0), Box::new(xpu));
        fabric.map_range(window, PortId(0));

        let mut memory = GuestMemory::new(1 << 22);
        memory.share_range(0x10_0000..0x20_0000);
        let stager = IdentityStager::new(0x10_0000, 0x10_0000);
        (fabric, memory, stager, driver)
    }

    #[test]
    fn init_validates_vendor() {
        let (mut fabric, _m, _s, driver) = setup();
        assert!(driver.init(&mut fabric).is_ok());
    }

    #[test]
    fn init_rejects_wrong_vendor() {
        let xpu = Xpu::new(XpuSpec::a100(), Bdf::new(0x17, 0, 0), 0x8000_0000);
        let mut driver = XpuDriver::for_xpu(tvm(), &xpu);
        driver.expected_vendor_id = 0xDEAD;
        let window = xpu.address_window();
        let mut fabric = Fabric::new();
        fabric.attach(PortId(0), Box::new(xpu));
        fabric.map_range(window, PortId(0));
        assert_eq!(
            driver.init(&mut fabric),
            Err(DriverError::WrongDevice { vendor_id: 0x10DE })
        );
    }

    #[test]
    fn dma_round_trip_via_stager() {
        let (mut fabric, mut memory, mut stager, driver) = setup();
        driver.init(&mut fabric).unwrap();
        let data = vec![0x3C; 20000];
        driver
            .dma_to_device(&mut fabric, &mut memory, &mut stager, &data, 0x4000)
            .unwrap();
        let back = driver
            .dma_from_device(&mut fabric, &mut memory, &mut stager, 0x4000, 20000)
            .unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn full_inference_flow_matches_host_prediction() {
        let (mut fabric, mut memory, mut stager, driver) = setup();
        driver.init(&mut fabric).unwrap();
        let weights = b"llama-weights-v2".to_vec();
        let input = b"what is a gpu?".to_vec();
        driver
            .load_model(&mut fabric, &mut memory, &mut stager, &weights, 0x1_0000)
            .unwrap();
        let result = driver
            .run_inference(
                &mut fabric,
                &mut memory,
                &mut stager,
                &input,
                0x2_0000,
                0x3_0000,
            )
            .unwrap();
        assert_eq!(result, CommandProcessor::surrogate_inference(&weights, &input));
    }

    #[test]
    fn register_round_trip() {
        let (mut fabric, _m, _s, driver) = setup();
        driver.write_register(&mut fabric, Reg::CmdArg0, 0xABCD).unwrap();
        assert_eq!(driver.read_register(&mut fabric, Reg::CmdArg0).unwrap(), 0xABCD);
        assert_eq!(driver.control_retries(), 0, "clean path needs no retries");
    }

    #[test]
    fn inference_without_model_fails_cleanly() {
        let (mut fabric, mut memory, mut stager, driver) = setup();
        driver.init(&mut fabric).unwrap();
        let err = driver
            .run_inference(&mut fabric, &mut memory, &mut stager, b"in", 0x2000, 0x3000)
            .unwrap_err();
        assert_eq!(err, DriverError::CommandFailed);
    }
}
