//! The privileged-software adversary (§2.2, §8.2 "Attacks from host/TVM").
//!
//! The attacker controls the host OS, the hypervisor and peripheral
//! drivers. It tries to (1) read or tamper with TVM memory, and (2) reach
//! the protected xPU directly by issuing its own TLPs from host-side
//! requester IDs. The first is defeated by TVM hardware (modelled in
//! [`crate::GuestMemory`]); the second is what the PCIe-SC's L1 table
//! blocks.

use crate::guest_memory::GuestMemory;
use ccai_pcie::{Bdf, Fabric, Tlp};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Outcome of one attack attempt, for the security-analysis report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttackOutcome {
    /// The access was blocked (no data, no effect).
    Blocked,
    /// Data was obtained — includes what leaked.
    Leaked(Vec<u8>),
    /// A state change landed.
    Tampered,
}

/// The host/hypervisor adversary.
#[derive(Debug, Clone)]
pub struct HostAdversary {
    bdf: Bdf,
    attempts: u64,
}

impl Default for HostAdversary {
    fn default() -> Self {
        Self::new()
    }
}

impl HostAdversary {
    /// Creates the adversary with the host's own requester ID (bus 0,
    /// device 1 — distinct from any TVM).
    pub fn new() -> Self {
        HostAdversary { bdf: Bdf::new(0, 1, 0), attempts: 0 }
    }

    /// The requester ID the adversary stamps on its TLPs.
    pub fn bdf(&self) -> Bdf {
        self.bdf
    }

    /// Attack attempts made so far.
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// Attempts to read TVM guest memory through the hypervisor mapping.
    pub fn read_tvm_memory(&mut self, memory: &GuestMemory, addr: u64, len: u64) -> AttackOutcome {
        self.attempts += 1;
        match memory.hypervisor_read(addr, len) {
            Some(data) => AttackOutcome::Leaked(data),
            None => AttackOutcome::Blocked,
        }
    }

    /// Attempts to read from a device BAR (e.g. the xPU's memory aperture)
    /// with the host's own requester ID.
    pub fn read_device(&mut self, fabric: &mut Fabric, addr: u64, len: u32) -> AttackOutcome {
        self.attempts += 1;
        let replies = fabric.host_request(Tlp::memory_read(self.bdf, addr, len, 0xE0));
        match replies.into_iter().find(|t| !t.payload().is_empty()) {
            Some(reply) => AttackOutcome::Leaked(reply.into_payload()),
            None => AttackOutcome::Blocked,
        }
    }

    /// Attempts to write to a device BAR with the host's requester ID,
    /// then verifies the write landed by reading back as the *authorized*
    /// `probe_as` requester.
    pub fn write_device(
        &mut self,
        fabric: &mut Fabric,
        addr: u64,
        payload: Vec<u8>,
        probe_as: Bdf,
    ) -> AttackOutcome {
        self.attempts += 1;
        let before = fabric.host_request(Tlp::memory_read(
            probe_as,
            addr,
            payload.len() as u32,
            0xE1,
        ));
        fabric.host_request(Tlp::memory_write(self.bdf, addr, payload.clone()));
        let after = fabric.host_request(Tlp::memory_read(
            probe_as,
            addr,
            payload.len() as u32,
            0xE2,
        ));
        let changed = match (before.first(), after.first()) {
            (Some(b), Some(a)) => b.payload() != a.payload(),
            _ => false,
        };
        if changed {
            AttackOutcome::Tampered
        } else {
            AttackOutcome::Blocked
        }
    }
}

impl fmt::Display for HostAdversary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HostAdversary({}, attempts={})", self.bdf, self.attempts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccai_pcie::PortId;
    use ccai_xpu::{Xpu, XpuSpec};

    #[test]
    fn tvm_private_memory_is_opaque() {
        let mut memory = GuestMemory::new(1 << 20);
        memory.write(0x1000, b"api keys");
        let mut adversary = HostAdversary::new();
        assert_eq!(adversary.read_tvm_memory(&memory, 0x1000, 8), AttackOutcome::Blocked);
        assert_eq!(adversary.attempts(), 1);
    }

    #[test]
    fn shared_pages_do_leak_to_the_host() {
        // This is the point of the Adaptor encrypting before staging:
        // anything in a bounce buffer IS host-visible.
        let mut memory = GuestMemory::new(1 << 20);
        memory.share_range(0x8000..0x9000);
        memory.write(0x8000, b"bounced");
        let mut adversary = HostAdversary::new();
        assert_eq!(
            adversary.read_tvm_memory(&memory, 0x8000, 7),
            AttackOutcome::Leaked(b"bounced".to_vec())
        );
    }

    #[test]
    fn unprotected_xpu_is_wide_open() {
        // Without a PCIe-SC, the host adversary reads and writes device
        // memory freely — the problem ccAI exists to solve.
        let xpu = Xpu::new(XpuSpec::t4(), Bdf::new(0x17, 0, 0), 0x8000_0000);
        let bar1 = xpu.bar1_base();
        let window = xpu.address_window();
        let mut fabric = Fabric::new();
        fabric.attach(PortId(0), Box::new(xpu));
        fabric.map_range(window, PortId(0));

        // A "tenant" puts a model on the device.
        let tenant = Bdf::new(0, 2, 0);
        fabric.host_request(Tlp::memory_write(tenant, bar1, b"secret model".to_vec()));

        let mut adversary = HostAdversary::new();
        match adversary.read_device(&mut fabric, bar1, 12) {
            AttackOutcome::Leaked(data) => assert_eq!(data, b"secret model"),
            other => panic!("expected leak on unprotected xPU, got {other:?}"),
        }
        match adversary.write_device(&mut fabric, bar1, vec![0; 12], tenant) {
            AttackOutcome::Tampered => {}
            other => panic!("expected tamper on unprotected xPU, got {other:?}"),
        }
    }
}
