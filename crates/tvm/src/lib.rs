//! Trusted-VM substrate for the ccAI reproduction.
//!
//! ccAI deploys on a general-purpose TVM (e.g. an Intel TDX guest): the
//! TVM's hardware protection shields the xPU application, the unmodified
//! vendor driver stack, and the Adaptor from the privileged-software
//! adversary (§2.2, §3). This crate models that CPU side:
//!
//! * [`guest_memory`] — TVM guest memory with private vs. shared (bounce)
//!   pages and hardware-enforced DMA rules ([`GuestMemory`]);
//! * [`iommu`] — the platform IOMMU restricting which device may DMA
//!   where ([`Iommu`]);
//! * [`stager`] — the kernel DMA-staging service ([`DmaStager`]): vanilla
//!   kernels copy through ordinary bounce buffers; ccAI's Adaptor (in
//!   `ccai-core`) swaps in an encrypting implementation *without touching
//!   the driver* — this seam is exactly how ccAI achieves transparency;
//! * [`driver`] — unmodified vendor-style driver models that program
//!   register files and DMA engines over the PCIe fabric;
//! * [`hypervisor`] — the privileged-software adversary (host OS /
//!   hypervisor) trying to read TVM memory and reach the xPU.
//!
//! # Example
//!
//! ```
//! use ccai_tvm::GuestMemory;
//!
//! let mut memory = GuestMemory::new(1 << 20);
//! memory.share_range(0x8000..0x10000); // bounce-buffer window
//! assert!(memory.is_shared(0x8000));
//! assert!(!memory.is_shared(0x0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod guest_memory;
pub mod hypervisor;
pub mod iommu;
pub mod port;
pub mod stacks;
pub mod stager;

pub use driver::{DriverError, RetryPolicy, XpuDriver};
pub use guest_memory::GuestMemory;
pub use hypervisor::HostAdversary;
pub use iommu::Iommu;
pub use port::TlpPort;
pub use stacks::{stack_for_vendor, UserStack};
pub use stager::{DmaStager, IdentityStager, StagedBuffer};
