//! The kernel DMA-staging service — ccAI's transparency seam.
//!
//! Real drivers never hand device-visible addresses to hardware directly;
//! they call the kernel's DMA-mapping API, which on TVMs bounces data
//! through shared pages. ccAI's Adaptor is "a new kernel module"
//! (§7.1) that replaces this service with an encrypting one — the driver
//! and application are untouched, which is the paper's headline
//! transparency claim.
//!
//! This module defines the seam ([`DmaStager`]) and the vanilla
//! implementation ([`IdentityStager`]); the Adaptor's confidential
//! implementation lives in `ccai-core`.

use crate::guest_memory::GuestMemory;
use crate::port::TlpPort;
use std::fmt;

/// Error returned when recovering device output fails integrity checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegrityError {
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "integrity failure: {}", self.reason)
    }
}

impl std::error::Error for IntegrityError {}

/// A buffer staged for device DMA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StagedBuffer {
    /// The device-visible host address the driver should program.
    pub device_addr: u64,
    /// Length in bytes as seen by the device.
    pub len: u64,
}

/// The kernel DMA-mapping service drivers call.
///
/// Implementations own a window of shared guest memory and hand out
/// device-visible staging buffers. The vanilla kernel copies plaintext;
/// the ccAI Adaptor encrypts/decrypts and coordinates with the PCIe-SC.
pub trait DmaStager: fmt::Debug {
    /// Stages `data` for an upcoming host→device transfer, returning the
    /// address the driver should program as the DMA source. Confidential
    /// implementations may also emit control traffic through `port`.
    fn stage_to_device(
        &mut self,
        port: &mut dyn TlpPort,
        memory: &mut GuestMemory,
        data: &[u8],
    ) -> StagedBuffer;

    /// Allocates a landing buffer for an upcoming device→host transfer of
    /// `len` bytes.
    fn alloc_from_device(
        &mut self,
        port: &mut dyn TlpPort,
        memory: &mut GuestMemory,
        len: u64,
    ) -> StagedBuffer;

    /// Recovers the data a device wrote into `buffer` (after the transfer
    /// completed).
    ///
    /// # Errors
    ///
    /// [`IntegrityError`] if authenticity verification fails (confidential
    /// implementations only).
    fn recover_from_device(
        &mut self,
        port: &mut dyn TlpPort,
        memory: &mut GuestMemory,
        buffer: StagedBuffer,
    ) -> Result<Vec<u8>, IntegrityError>;

    /// Notifies the stager that the transfer using `buffer` failed and is
    /// about to be retried with a freshly staged buffer.
    ///
    /// Confidential implementations use this hook to rotate the stream key
    /// (so the retransmit never reuses an IV) and to tell the PCIe-SC to do
    /// the same; the vanilla kernel has nothing to clean up, so the default
    /// is a no-op.
    fn transfer_failed(
        &mut self,
        _port: &mut dyn TlpPort,
        _memory: &mut GuestMemory,
        _buffer: &StagedBuffer,
    ) {
    }

    /// Releases all staging allocations (end of task).
    fn release_all(&mut self);
}

/// The vanilla (non-confidential) bounce-buffer implementation: plaintext
/// copies through a shared window. This is the baseline every overhead
/// figure compares against.
#[derive(Debug)]
pub struct IdentityStager {
    window_base: u64,
    window_len: u64,
    next: u64,
}

impl IdentityStager {
    /// Creates a stager owning the shared window `[base, base+len)`.
    /// The caller must have shared that range in guest memory.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn new(window_base: u64, window_len: u64) -> Self {
        assert!(window_len > 0, "empty staging window");
        IdentityStager { window_base, window_len, next: 0 }
    }

    fn bump(&mut self, len: u64) -> u64 {
        let aligned = (self.next + 63) & !63;
        assert!(
            aligned + len <= self.window_len,
            "staging window exhausted: need {len}, used {aligned} of {}",
            self.window_len
        );
        self.next = aligned + len;
        self.window_base + aligned
    }
}

impl DmaStager for IdentityStager {
    fn stage_to_device(
        &mut self,
        _port: &mut dyn TlpPort,
        memory: &mut GuestMemory,
        data: &[u8],
    ) -> StagedBuffer {
        let device_addr = self.bump(data.len() as u64);
        memory.write(device_addr, data);
        StagedBuffer { device_addr, len: data.len() as u64 }
    }

    fn alloc_from_device(
        &mut self,
        _port: &mut dyn TlpPort,
        _memory: &mut GuestMemory,
        len: u64,
    ) -> StagedBuffer {
        let device_addr = self.bump(len);
        StagedBuffer { device_addr, len }
    }

    fn recover_from_device(
        &mut self,
        _port: &mut dyn TlpPort,
        memory: &mut GuestMemory,
        buffer: StagedBuffer,
    ) -> Result<Vec<u8>, IntegrityError> {
        Ok(memory.read(buffer.device_addr, buffer.len))
    }

    fn release_all(&mut self) {
        self.next = 0;
    }
}

impl IdentityStager {
    /// The staging-window allocation cursor, for snapshot capture.
    pub fn cursor(&self) -> u64 {
        self.next
    }

    /// Restores the allocation cursor from a snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `next` exceeds the window length.
    pub fn set_cursor(&mut self, next: u64) {
        assert!(next <= self.window_len, "cursor past staging window");
        self.next = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccai_pcie::{Bdf, Fabric, HostMemory};

    fn setup() -> (Fabric, GuestMemory, IdentityStager) {
        let mut mem = GuestMemory::new(1 << 20);
        mem.share_range(0x8000..0x18000);
        (Fabric::new(), mem, IdentityStager::new(0x8000, 0x10000))
    }

    #[test]
    fn staged_data_is_device_visible() {
        let (mut port, mut mem, mut stager) = setup();
        let buf = stager.stage_to_device(&mut port, &mut mem, b"payload");
        let via_dma = mem.dma_read(Bdf::new(1, 0, 0), buf.device_addr, 7);
        assert_eq!(via_dma, Some(b"payload".to_vec()));
    }

    #[test]
    fn recover_reads_device_writes() {
        let (mut port, mut mem, mut stager) = setup();
        let buf = stager.alloc_from_device(&mut port, &mut mem, 16);
        assert!(mem.dma_write(Bdf::new(1, 0, 0), buf.device_addr, &[9u8; 16]));
        assert_eq!(
            stager.recover_from_device(&mut port, &mut mem, buf).unwrap(),
            vec![9u8; 16]
        );
    }

    #[test]
    fn allocations_do_not_overlap() {
        let (mut port, mut mem, mut stager) = setup();
        let a = stager.stage_to_device(&mut port, &mut mem, &[1u8; 100]);
        let b = stager.stage_to_device(&mut port, &mut mem, &[2u8; 100]);
        assert!(a.device_addr + a.len <= b.device_addr);
        // First buffer intact after second staged.
        assert_eq!(mem.read(a.device_addr, 100), vec![1u8; 100]);
    }

    #[test]
    fn release_recycles_the_window() {
        let (mut port, mut mem, mut stager) = setup();
        for round in 0..10 {
            let _ = stager.stage_to_device(&mut port, &mut mem, &vec![round as u8; 0x8000]);
            stager.release_all();
        }
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn window_exhaustion_panics() {
        let (mut port, mut mem, mut stager) = setup();
        let _ = stager.stage_to_device(&mut port, &mut mem, &vec![0u8; 0x8000]);
        let _ = stager.stage_to_device(&mut port, &mut mem, &vec![0u8; 0x9000]);
    }
}
