//! The platform IOMMU.
//!
//! Privileged software programs the IOMMU to confine each device's DMA to
//! its assigned windows; ccAI "follows existing IOMMU settings in TVM or
//! privileged software, without additional changes" (§8.1). The model
//! wraps a [`GuestMemory`] and enforces a per-BDF allow-list, which the
//! §8.2 malicious-device analysis exercises.

use crate::guest_memory::GuestMemory;
use ccai_pcie::{Bdf, HostMemory};
use std::collections::HashMap;
use std::fmt;
use std::ops::Range;

/// A per-device DMA allow-list layered over guest memory.
pub struct Iommu {
    memory: GuestMemory,
    allowed: HashMap<Bdf, Vec<Range<u64>>>,
    faults: u64,
}

impl fmt::Debug for Iommu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Iommu")
            .field("devices", &self.allowed.len())
            .field("faults", &self.faults)
            .finish()
    }
}

impl Iommu {
    /// Wraps guest memory with an empty (deny-all) policy.
    pub fn new(memory: GuestMemory) -> Self {
        Iommu { memory, allowed: HashMap::new(), faults: 0 }
    }

    /// Grants `device` DMA access to `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn grant(&mut self, device: Bdf, range: Range<u64>) {
        assert!(range.start < range.end, "empty IOMMU window");
        self.allowed.entry(device).or_default().push(range);
    }

    /// Revokes all of `device`'s windows.
    pub fn revoke_all(&mut self, device: Bdf) {
        self.allowed.remove(&device);
    }

    /// IOMMU faults recorded (blocked accesses).
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// The wrapped guest memory.
    pub fn memory(&self) -> &GuestMemory {
        &self.memory
    }

    /// Mutable access to the wrapped guest memory (trusted path).
    pub fn memory_mut(&mut self) -> &mut GuestMemory {
        &mut self.memory
    }

    fn permitted(&self, device: Bdf, addr: u64, len: u64) -> bool {
        self.allowed
            .get(&device)
            .is_some_and(|ranges| ranges.iter().any(|r| r.start <= addr && addr + len <= r.end))
    }
}

impl HostMemory for Iommu {
    fn dma_read(&mut self, requester: Bdf, addr: u64, len: usize) -> Option<Vec<u8>> {
        if !self.permitted(requester, addr, len as u64) {
            self.faults += 1;
            return None;
        }
        self.memory.dma_read(requester, addr, len)
    }

    fn dma_write(&mut self, requester: Bdf, addr: u64, data: &[u8]) -> bool {
        if !self.permitted(requester, addr, data.len() as u64) {
            self.faults += 1;
            return false;
        }
        self.memory.dma_write(requester, addr, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xpu() -> Bdf {
        Bdf::new(0x17, 0, 0)
    }

    fn rogue() -> Bdf {
        Bdf::new(9, 9, 0)
    }

    fn setup() -> Iommu {
        let mut mem = GuestMemory::new(1 << 20);
        mem.share_range(0x8000..0x10000);
        let mut iommu = Iommu::new(mem);
        iommu.grant(xpu(), 0x8000..0x10000);
        iommu
    }

    #[test]
    fn granted_device_reaches_its_window() {
        let mut iommu = setup();
        assert!(iommu.dma_write(xpu(), 0x8000, b"ok"));
        assert_eq!(iommu.dma_read(xpu(), 0x8000, 2), Some(b"ok".to_vec()));
        assert_eq!(iommu.faults(), 0);
    }

    #[test]
    fn rogue_device_blocked_everywhere() {
        let mut iommu = setup();
        assert!(!iommu.dma_write(rogue(), 0x8000, b"evil"));
        assert_eq!(iommu.dma_read(rogue(), 0x8000, 4), None);
        assert_eq!(iommu.faults(), 2);
    }

    #[test]
    fn granted_device_blocked_outside_window() {
        let mut iommu = setup();
        assert_eq!(iommu.dma_read(xpu(), 0x0, 4), None, "private memory");
        assert_eq!(iommu.dma_read(xpu(), 0x10000, 4), None, "past the window");
        assert_eq!(iommu.faults(), 2);
    }

    #[test]
    fn iommu_composes_with_tvm_protection() {
        // Even a *granted* window cannot expose private pages: grant the
        // device a window over private memory and watch the TVM layer
        // still refuse.
        let mem = GuestMemory::new(1 << 20); // nothing shared
        let mut iommu = Iommu::new(mem);
        iommu.grant(xpu(), 0x0..0x1000);
        assert_eq!(iommu.dma_read(xpu(), 0x0, 4), None);
        assert_eq!(iommu.faults(), 0, "IOMMU allowed it");
        assert_eq!(iommu.memory().dma_denials(), 1, "TVM hardware blocked it");
    }

    #[test]
    fn revoke_cuts_access() {
        let mut iommu = setup();
        assert!(iommu.dma_write(xpu(), 0x8000, b"ok"));
        iommu.revoke_all(xpu());
        assert!(!iommu.dma_write(xpu(), 0x8000, b"late"));
    }

    #[test]
    fn straddling_windows_not_merged() {
        let mut iommu = setup();
        iommu.grant(xpu(), 0x10000..0x11000);
        // 0x8000..0x10000 and 0x10000..0x11000 are separate windows; a
        // single access spanning both is rejected (real IOMMUs work per
        // page, our windows per grant).
        assert_eq!(iommu.dma_read(xpu(), 0xFFF0, 0x20), None);
    }
}
