//! Fleet-serving battery: determinism, fairness under flooding, and the
//! acceptance-scale run.
//!
//! The serving layer is a pure function of its [`FleetConfig`]: the same
//! seed must replay a bit-identical trace digest and report, with and
//! without rate limiting. On top of that this suite proves the isolation
//! claim that justifies the continuous-batching scheduler: a tenant
//! flooding at 10× its contracted rate absorbs the backpressure itself —
//! every victim's p99 hop latency stays within 2× of a solo baseline,
//! and the flooder's shed/idle numbers (not the victims') carry the
//! damage.
//!
//! When `CCAI_TRACE_DIGEST_OUT` names a file, the determinism test dumps
//! the digests it computed so CI can diff two consecutive suite runs.

use ccai_llm::serve::{FleetConfig, FleetServer, TenantSpec};
use ccai_llm::LlmSpec;
use ccai_sim::telemetry::ALL_HOPS;
use ccai_sim::SimDuration;
use ccai_xpu::XpuSpec;

/// Victim contract: 25 req/s mean offered load, bucket sized to admit it.
const VICTIM_MEAN_MS: u64 = 40;
/// Flooder offered load: 10× the victim's.
const FLOOD_MEAN_MS: u64 = 4;

fn config(seed: u64, rate_limiting: bool) -> FleetConfig {
    let mut cfg = FleetConfig::standard(seed);
    cfg.rate_limiting = rate_limiting;
    cfg
}

fn run(cfg: FleetConfig, requests: u64) -> FleetServer {
    let mut fleet = FleetServer::new(cfg);
    fleet.generate(requests);
    fleet.drain();
    fleet
}

/// Satellite 1: same seed → bit-identical digest, with and without rate
/// limiting; different seeds diverge.
#[test]
fn fleet_run_replays_bit_identically_for_the_same_seed() {
    let limited_a = run(config(0xBEEF, true), 2_000);
    let limited_b = run(config(0xBEEF, true), 2_000);
    assert_eq!(
        limited_a.telemetry().digest(),
        limited_b.telemetry().digest(),
        "rate-limited run must replay bit-identically"
    );
    assert_eq!(limited_a.report().to_json(), limited_b.report().to_json());

    let open_a = run(config(0xBEEF, false), 2_000);
    let open_b = run(config(0xBEEF, false), 2_000);
    assert_eq!(
        open_a.telemetry().digest(),
        open_b.telemetry().digest(),
        "unlimited run must replay bit-identically"
    );

    let other_seed = run(config(0xD00D, true), 2_000);
    assert_ne!(
        limited_a.telemetry().digest(),
        other_seed.telemetry().digest(),
        "different seeds must produce different traces"
    );

    // CI hook: dump the digests so two consecutive suite runs can be
    // diffed without parsing test output.
    if let Ok(path) = std::env::var("CCAI_TRACE_DIGEST_OUT") {
        let dump = format!(
            "fleet_limited={}\nfleet_open={}\n",
            limited_a.telemetry().digest_hex(),
            open_a.telemetry().digest_hex()
        );
        std::fs::write(&path, dump).expect("write digest dump");
    }
}

/// The flooding scenario: tenant 0 offers 10× its contract; tenants
/// 1..n stay at their contracted load.
fn flood_config(seed: u64, victims: u32) -> FleetConfig {
    let mut tenants =
        vec![TenantSpec::new(500, SimDuration::from_millis(FLOOD_MEAN_MS), 32, 64)];
    for i in 0..victims {
        tenants.push(TenantSpec::new(
            600 + i,
            SimDuration::from_millis(VICTIM_MEAN_MS),
            32,
            64,
        ));
    }
    FleetConfig {
        seed,
        shards: 4,
        max_batch: 32,
        admission_backlog: 64,
        rate_limiting: true,
        model: LlmSpec::opt_1_3b(),
        device: XpuSpec::a100(),
        tenants,
    }
}

/// Solo baseline: the same victim population with no flooder present.
fn solo_config(seed: u64, victims: u32) -> FleetConfig {
    let mut cfg = flood_config(seed, victims);
    cfg.tenants.remove(0);
    cfg
}

/// Satellite 2: under a 10× flooder, no victim's p99 hop latency exceeds
/// 2× its solo baseline, and the flooder — not the victims — absorbs the
/// backpressure (sheds and idle time).
#[test]
fn flooding_tenant_cannot_starve_the_others() {
    const VICTIMS: u32 = 7;
    const REQUESTS_SOLO: u64 = 4_000;
    const REQUESTS_FLOOD: u64 = 12_000; // flooder generates most of these

    let solo = run(solo_config(0xACE, VICTIMS), REQUESTS_SOLO);
    let flooded = run(flood_config(0xACE, VICTIMS), REQUESTS_FLOOD);

    for i in 0..VICTIMS {
        let tag = 600 + i;
        for hop in ALL_HOPS {
            let base = solo.telemetry().tenant_hop_summary(tag, hop);
            let under = flooded.telemetry().tenant_hop_summary(tag, hop);
            let (Some(base), Some(under)) = (base, under) else {
                continue; // hop with no spans (e.g. zero-cost stages)
            };
            if base.p99() <= 0.0 {
                continue;
            }
            let ratio = under.p99() / base.p99();
            assert!(
                ratio <= 2.0,
                "victim {tag} hop {hop} p99 regressed {ratio:.2}x under flooding \
                 (solo {:.1} us, flooded {:.1} us)",
                base.p99(),
                under.p99()
            );
        }
    }

    let report = flooded.report();
    let flooder = report.tenants.iter().find(|t| t.tenant == 500).unwrap();
    let victims: Vec<_> = report.tenants.iter().filter(|t| t.tenant != 500).collect();

    // The flooder is over contract by 10x: admission must shed most of
    // its traffic while every victim is served nearly in full.
    assert!(
        flooder.shed_rate_limited > flooder.served,
        "flooder must shed more than it serves (shed {} vs served {})",
        flooder.shed_rate_limited,
        flooder.served
    );
    for v in &victims {
        let shed = v.shed_rate_limited + v.shed_queue_full + v.shed_quarantined;
        assert!(
            shed * 20 <= v.generated,
            "victim {} shed {shed} of {} requests — backpressure leaked",
            v.tenant,
            v.generated
        );
    }

    // Backpressure shows up as wait time charged to the flooder: its
    // idle share must dwarf any victim's.
    let max_victim_idle = victims.iter().map(|v| v.idle).max().unwrap();
    assert!(
        flooder.idle > max_victim_idle,
        "flooder idle {:?} must exceed every victim's ({:?}) — it absorbs the backpressure",
        flooder.idle,
        max_victim_idle
    );
}

/// Acceptance-scale run: ≥100k requests across 8 tenants × 4 shards,
/// every request accounted (served or typed-shed), per-tenant hop
/// latency present for every tenant.
#[test]
fn acceptance_scale_run_accounts_every_request() {
    const REQUESTS: u64 = 100_000;
    let fleet = run(config(0x5CA1E, true), REQUESTS);
    let report = fleet.report();

    assert!(report.tenants.len() >= 8, "need at least 8 tenants");
    assert!(report.shards >= 4, "need at least 4 shards");
    assert_eq!(report.generated, REQUESTS);

    let mut total = 0;
    for t in &report.tenants {
        assert_eq!(
            t.generated,
            t.served + t.shed_rate_limited + t.shed_queue_full + t.shed_quarantined,
            "tenant {} leaked requests",
            t.tenant
        );
        assert_eq!(t.queued, 0, "drain left work queued for tenant {}", t.tenant);
        assert!(t.served > 0, "tenant {} served nothing", t.tenant);
        total += t.generated;

        // Per-tenant hop latency must be reported for the served hops.
        let summary = fleet
            .telemetry()
            .tenant_hop_summary(t.tenant, ccai_sim::Hop::Dma)
            .expect("served tenant has Dma spans");
        assert!(summary.p99() >= summary.p50());
    }
    assert_eq!(total, REQUESTS);

    // The telemetry invariant holds at fleet scale: every picosecond is
    // either a tagged hop span or idle.
    let t = fleet.telemetry();
    assert_eq!(
        (t.span_total() + t.idle_total()).as_picos(),
        t.now().as_picos()
    );
}

/// Continuous batching must actually batch: at this offered load the
/// mean dispatch round carries several requests, and admission happens
/// only at quiesce points (rounds ≪ requests).
#[test]
fn rounds_batch_multiple_requests() {
    let fleet = run(config(7, true), 20_000);
    let rounds = fleet.telemetry().counter("serve.rounds");
    let served = fleet.telemetry().counter("serve.served");
    assert!(rounds > 0);
    assert!(
        served >= rounds * 2,
        "mean batch below 2 ({served} served / {rounds} rounds) — not batching"
    );
    let hist = fleet
        .telemetry()
        .histogram("serve.batch_size")
        .expect("batch-size histogram exists");
    assert_eq!(hist.total(), rounds);
}
