//! Metric invariants and quarantine observability.
//!
//! The telemetry hub owns the datapath's clock, so its accounting is
//! exact by construction — these tests pin that contract:
//!
//! * counters are monotone non-decreasing over the run;
//! * Σ per-hop span time + Σ idle/backoff time equals the measured
//!   end-to-end sim time, to the clock's (picosecond) resolution;
//! * every `transfer_retries` / `rekeys` counter increment has a
//!   matching trace event;
//! * a quarantine trip is visible coherently in the alert log, the
//!   event trace, and the per-tenant deny counter.

use ccai_core::sc::ScAlert;
use ccai_core::system::layout;
use ccai_core::{ConfidentialSystem, SystemMode};
use ccai_pcie::{Bdf, FaultPlan, Tlp};
use ccai_tvm::RetryPolicy;
use ccai_xpu::XpuSpec;
use std::collections::BTreeMap;

fn workload() -> (Vec<u8>, Vec<u8>) {
    let weights: Vec<u8> = (0..20_000).map(|i| (i * 131 % 251) as u8).collect();
    let input: Vec<u8> = (0..6_000).map(|i| (i * 17 % 241) as u8).collect();
    (weights, input)
}

fn build_faulted() -> ConfidentialSystem {
    let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    system
        .driver_mut()
        .set_retry_policy(RetryPolicy { max_attempts: 8, backoff_base: 2, ..Default::default() });
    system.inject_faults(FaultPlan::corrupt_only(5, 96));
    system
}

fn tvm_tenant_tag() -> u32 {
    u32::from(Bdf::new(layout::TVM_BDF.0, layout::TVM_BDF.1, layout::TVM_BDF.2).to_u16())
}

/// Counters as a map, for whole-set monotonicity comparison.
fn counter_map(system: &ConfidentialSystem) -> BTreeMap<String, u64> {
    system.telemetry().counters().into_iter().collect()
}

fn assert_monotone(before: &BTreeMap<String, u64>, after: &BTreeMap<String, u64>, when: &str) {
    for (name, value) in before {
        let later = after.get(name).copied().unwrap_or(0);
        assert!(
            later >= *value,
            "{when}: counter {name} decreased: {value} -> {later}"
        );
    }
}

#[test]
fn counters_never_decrease_across_pump_rounds() {
    let mut system = build_faulted();
    let (weights, input) = workload();
    let mut prev = counter_map(&system);

    system.run_workload(&weights, &input).expect("recoverable plan");
    let after_first = counter_map(&system);
    assert_monotone(&prev, &after_first, "after first workload");
    prev = after_first;

    // Extra idle pump rounds must never move any counter backwards.
    for round in 0..4 {
        system.with_port(|port, memory| {
            let _ = port.pump(memory);
        });
        let now = counter_map(&system);
        assert_monotone(&prev, &now, &format!("pump round {round}"));
        prev = now;
    }

    system.run_workload(&weights, &input).expect("second run");
    assert_monotone(&prev, &counter_map(&system), "after second workload");
}

#[test]
fn spans_plus_idle_account_for_elapsed_time_exactly() {
    let mut system = build_faulted();
    let (weights, input) = workload();
    system.run_workload(&weights, &input).expect("recoverable plan");

    let telemetry = system.telemetry();
    let elapsed = telemetry.now().duration_since(ccai_sim::SimTime::ZERO);
    assert!(!elapsed.is_zero(), "the workload must consume sim time");
    assert_eq!(
        telemetry.span_total() + telemetry.idle_total(),
        elapsed,
        "per-hop spans plus idle/backoff time must equal measured e2e"
    );

    // The driver's backoff now idles on sim-time deadlines, so the
    // starving tenant's wait is a measured, attributable quantity.
    assert!(system.driver().dma_retries() > 0, "plan must force retries");
    let starved = telemetry.idle_for_tenant(tvm_tenant_tag());
    assert!(
        !starved.is_zero(),
        "backoff under sustained faults must show up as per-tenant idle time"
    );
    assert!(starved <= telemetry.idle_total());
}

#[test]
fn retry_and_rekey_counters_match_their_trace_events() {
    let mut system = build_faulted();
    let (weights, input) = workload();
    system.run_workload(&weights, &input).expect("recoverable plan");

    let telemetry = system.telemetry();
    let events = telemetry.events();
    assert_eq!(
        telemetry.events_dropped(),
        0,
        "this workload must fit the ring so event counting is exact"
    );
    let count_kind = |kind: &str| events.iter().filter(|e| e.kind == kind).count() as u64;

    assert_eq!(
        telemetry.counter("adaptor.transfer_retries"),
        count_kind("adaptor.retry"),
        "every transfer_retries increment has a matching trace event"
    );
    assert_eq!(
        telemetry.counter("adaptor.rekeys"),
        count_kind("adaptor.rekey"),
        "every rekey increment has a matching trace event"
    );
    assert_eq!(telemetry.counter("driver.retries"), count_kind("driver.retry"));
    assert_eq!(telemetry.counter("fault.injected"), {
        events.iter().filter(|e| e.kind.starts_with("fault.")).count() as u64
    });

    // The functional counters agree with the telemetry mirror.
    assert_eq!(
        telemetry.counter("adaptor.transfer_retries"),
        system.adaptor_counters().transfer_retries
    );
    assert_eq!(telemetry.counter("adaptor.rekeys"), system.adaptor_counters().rekeys);
    assert_eq!(telemetry.counter("driver.retries"), system.driver().dma_retries());
}

#[test]
fn control_fault_counters_match_their_trace_events() {
    // Same contract as the datapath test above, but with the injector
    // armed against the *control* path: every control-plane recovery
    // counter has a one-to-one trace-event mirror, the functional
    // counters agree with telemetry, and the clock accounting stays
    // exact even while control writes are duplicated and reordered.
    let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    system
        .driver_mut()
        .set_retry_policy(RetryPolicy { max_attempts: 8, backoff_base: 2, ..Default::default() });
    system.inject_faults(FaultPlan::duplicate_reorder(21, 64).with_control_path());
    let (weights, input) = workload();
    system.run_workload(&weights, &input).expect("recoverable control plan");

    let telemetry = system.telemetry();
    assert_eq!(
        telemetry.events_dropped(),
        0,
        "this workload must fit the ring so event counting is exact"
    );
    let events = telemetry.events();
    let count_kind = |kind: &str| events.iter().filter(|e| e.kind == kind).count() as u64;

    assert_eq!(
        telemetry.counter("driver.control_retries"),
        count_kind("driver.control_retry"),
        "every driver control retry has a matching trace event"
    );
    assert_eq!(
        telemetry.counter("adaptor.control_retries"),
        count_kind("adaptor.control_retry"),
        "every adaptor control retry has a matching trace event"
    );
    assert_eq!(
        telemetry.counter("sc.control_dup_suppressed"),
        count_kind("sc.control_dup"),
        "every suppressed duplicate has a matching trace event"
    );
    assert_eq!(
        telemetry.counter("sc.control_gaps"),
        count_kind("sc.control_gap"),
        "every sequence gap has a matching trace event"
    );

    // The functional counters agree with the telemetry mirror.
    assert_eq!(telemetry.counter("driver.control_retries"), system.driver().control_retries());
    assert_eq!(
        telemetry.counter("adaptor.control_retries"),
        system.adaptor_counters().control_retries
    );
    let sc = system.sc().expect("protected").counters();
    assert_eq!(telemetry.counter("sc.control_dup_suppressed"), sc.control_dup_suppressed);
    assert_eq!(telemetry.counter("sc.control_gaps"), sc.control_gaps);

    // The plan must visibly exercise the protocol — otherwise the
    // equalities above hold vacuously at zero.
    assert!(
        system.driver().control_retries()
            + system.adaptor_counters().control_retries
            + sc.control_dup_suppressed
            > 0,
        "duplicated/reordered control writes must leave recovery footprints"
    );

    // Span + idle accounting stays exact with control faults armed.
    let elapsed = telemetry.now().duration_since(ccai_sim::SimTime::ZERO);
    assert!(!elapsed.is_zero());
    assert_eq!(
        telemetry.span_total() + telemetry.idle_total(),
        elapsed,
        "per-hop spans plus idle time must equal measured e2e under control faults"
    );
}

#[test]
fn quarantine_is_coherently_observable() {
    let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    // Corrupt every data-bearing packet: consecutive crypt failures must
    // trip the A1-deny quarantine.
    system.inject_faults(FaultPlan::corrupt_only(0xBAD, 1024));
    let (weights, input) = workload();
    assert!(system.run_workload(&weights, &input).is_err(), "channel is unrecoverable");

    let xpu_bdf = Bdf::new(layout::XPU_BDF.0, layout::XPU_BDF.1, layout::XPU_BDF.2);
    assert!(system.sc().expect("protected").is_quarantined(xpu_bdf));

    let alert_count = system
        .sc()
        .expect("protected")
        .alerts()
        .iter()
        .filter(|a| matches!(a, ScAlert::ChannelQuarantined { .. }))
        .count() as u64;
    assert_eq!(alert_count, 1, "exactly one quarantine trip");

    let telemetry = system.telemetry();
    let trace_count = telemetry
        .events()
        .iter()
        .filter(|e| e.kind == "sc.quarantine")
        .count() as u64;
    assert_eq!(trace_count, alert_count, "alert log and trace agree");
    assert_eq!(telemetry.counter("sc.quarantines"), alert_count);
    assert_eq!(
        telemetry.counter("sc.crypt_failures"),
        telemetry
            .events()
            .iter()
            .filter(|e| e.kind == "sc.crypt_fail")
            .count() as u64
    );

    // The per-tenant deny counter attributes the A1 denials. Remove the
    // injector so the increment below is the SC's doing alone.
    system.clear_faults();
    let deny_counter = format!("sc.quarantine_deny.{}", tvm_tenant_tag());
    let denied_before = system.telemetry().counter(&deny_counter);
    let probe = Tlp::memory_read(system.tvm_bdf(), layout::XPU_BAR_BASE, 8, 0x7A);
    system.fabric_mut().host_request(probe);
    assert_eq!(
        system.telemetry().counter(&deny_counter),
        denied_before + 1,
        "each blocked packet increments the quarantined tenant's deny counter"
    );
}
