//! Fleet chaos battery: hot-unplug/hot-plug, replica failover, and live
//! tenant migration with rekey in flight.
//!
//! Two layers are attacked:
//!
//! * the **serving loop** ([`FleetServer`]) absorbs seeded
//!   [`ChaosPlan`]s — hard crash, graceful drain, link hot-unplug
//!   mid-round, blade hot-plug, scheduled migration — and must converge
//!   to the chaos-free baseline: every event class ends with the same
//!   per-tenant served counts, the same accounting identity, and zero
//!   stranded work, while the same seed + plan replays bit-identically
//!   (including across a snapshot/resume taken mid-chaos);
//! * the **confidential systems** ([`ShardedFleet`]) prove the security
//!   story: replacement blades are admitted only through the attested
//!   bring-up chain, and live migration rotates every stream key so
//!   ciphertext captured on the source before the move is refused by the
//!   target — the rekey-in-flight argument, shown at the key level
//!   (epoch-derived GCM keys diverge) and at the bus level (replayed
//!   pre-migration TLPs are visibly suppressed).
//!
//! When `CCAI_TRACE_DIGEST_OUT` names a file, the replay test dumps the
//! chaotic digest to it so CI can diff two consecutive suite runs.

use ccai_core::sc::epoch_master;
use ccai_core::system::{layout, SystemMode};
use ccai_crypto::{AesGcm, DhGroup, DhKeyPair, Key, NONCE_LEN};
use ccai_llm::chaos::{ChaosEvent, ChaosPlan};
use ccai_llm::serve::{FleetConfig, FleetServer, TenantSpec};
use ccai_llm::{LlmSpec, ShardedFleet};
use ccai_pcie::{BusAdversary, Tlp, TlpType};
use ccai_sim::SimDuration;
use ccai_sim::SimTime;
use ccai_xpu::{CommandProcessor, XpuSpec};

fn at_ms(ms: u64) -> SimTime {
    SimTime::from_picos(ms * 1_000_000_000)
}

/// Generous limits (no rate limiting, deep backlog) so nothing sheds and
/// convergence to the baseline is exact, not statistical.
fn chaos_config(seed: u64) -> FleetConfig {
    let tenants = (0..6)
        .map(|i| TenantSpec::new(200 + i, SimDuration::from_millis(30), 64, 128))
        .collect();
    FleetConfig {
        seed,
        shards: 4,
        max_batch: 16,
        admission_backlog: 4096,
        rate_limiting: false,
        model: LlmSpec::opt_1_3b(),
        device: XpuSpec::a100(),
        tenants,
    }
}

fn run_with(cfg: FleetConfig, plan: ChaosPlan, requests: u64) -> FleetServer {
    let mut fleet = FleetServer::new(cfg);
    fleet.set_chaos_plan(plan);
    fleet.generate(requests);
    fleet.drain();
    fleet
}

/// Every event class converges: after recovery the chaotic run has the
/// exact per-tenant served counts of the chaos-free baseline, every
/// request accounted, and the span+idle identity intact.
#[test]
fn every_event_class_converges_to_the_chaos_free_baseline() {
    const REQUESTS: u64 = 1_500;
    let baseline = run_with(chaos_config(0xC0DE), ChaosPlan::default(), REQUESTS);
    let base = baseline.report();

    let classes: Vec<(&str, ChaosPlan)> = vec![
        (
            "crash",
            ChaosPlan::new(vec![(at_ms(500), ChaosEvent::Crash { replica: 1 })]),
        ),
        (
            "drain",
            ChaosPlan::new(vec![(at_ms(600), ChaosEvent::Drain { replica: 2 })]),
        ),
        (
            "hot_unplug",
            ChaosPlan::new(vec![(at_ms(700), ChaosEvent::HotUnplug { replica: 0 })]),
        ),
        (
            "hot_plug",
            ChaosPlan::new(vec![(at_ms(400), ChaosEvent::HotPlug { replica: 4 })]),
        ),
        (
            "migrate",
            ChaosPlan::new(vec![(at_ms(800), ChaosEvent::Migrate { tenant: 203, to: 3 })]),
        ),
        (
            "failover",
            ChaosPlan::new(vec![
                (at_ms(500), ChaosEvent::Crash { replica: 2 }),
                (at_ms(900), ChaosEvent::HotPlug { replica: 4 }),
                (at_ms(1_100), ChaosEvent::Migrate { tenant: 201, to: 4 }),
            ]),
        ),
    ];

    for (class, plan) in classes {
        let chaotic = run_with(chaos_config(0xC0DE), plan, REQUESTS);
        let report = chaotic.report();
        assert!(report.chaos_events > 0, "class {class}: no chaos event applied");
        assert_eq!(report.generated, base.generated, "class {class}");
        assert_eq!(report.tenants.len(), base.tenants.len());
        for (t, b) in report.tenants.iter().zip(&base.tenants) {
            assert_eq!(t.tenant, b.tenant);
            assert_eq!(
                t.generated, b.generated,
                "class {class}: arrivals must not depend on chaos"
            );
            assert_eq!(
                t.served, b.served,
                "class {class}: tenant {} served count diverged from baseline",
                t.tenant
            );
            assert_eq!(
                t.generated,
                t.served + t.shed_rate_limited + t.shed_queue_full + t.shed_quarantined,
                "class {class}: tenant {} leaked requests",
                t.tenant
            );
            assert_eq!(t.queued, 0, "class {class}: drain left work queued");
        }
        // Chaos never breaks the picosecond accounting identity.
        let t = chaotic.telemetry();
        assert_eq!(
            (t.span_total() + t.idle_total()).as_picos(),
            t.now().as_picos(),
            "class {class}: span+idle != elapsed"
        );
        // Telemetry mirrors the report's chaos counters.
        assert_eq!(
            t.counter("fleet.chaos.requeued"),
            report.requeued,
            "class {class}"
        );
        assert_eq!(
            t.counter("fleet.migrate.count"),
            report.migrations,
            "class {class}"
        );
        if class == "hot_unplug" {
            assert_eq!(
                t.counter("fleet.chaos.unplug_lost_tlps"),
                report.requeued,
                "every TLP lost on the severed link is absorbed by a requeue"
            );
        }
        if class == "crash" || class == "hot_unplug" || class == "failover" {
            assert!(
                report.requeued > 0,
                "class {class}: the removal must have struck mid-round"
            );
        }
    }
}

/// Same seed + same plan → bit-identical digest and report; a different
/// plan diverges. Dumps the digest for the CI replay diff.
#[test]
fn chaotic_runs_replay_bit_identically() {
    const REQUESTS: u64 = 1_200;
    let replicas = [0u32, 1, 2, 3];
    let tenants: Vec<u32> = (200..206).collect();
    let plan =
        || ChaosPlan::seeded(0x5EED, &replicas, &tenants, SimDuration::from_secs(4), 12);

    let a = run_with(chaos_config(0xBEEF), plan(), REQUESTS);
    let b = run_with(chaos_config(0xBEEF), plan(), REQUESTS);
    assert_eq!(
        a.telemetry().digest(),
        b.telemetry().digest(),
        "same seed + same plan must replay bit-identically"
    );
    assert_eq!(a.report().to_json(), b.report().to_json());
    assert!(a.report().chaos_events > 0, "the seeded plan must actually fire");

    let other = run_with(
        chaos_config(0xBEEF),
        ChaosPlan::seeded(0x0BAD, &replicas, &tenants, SimDuration::from_secs(4), 12),
        REQUESTS,
    );
    assert_ne!(
        a.telemetry().digest(),
        other.telemetry().digest(),
        "a different chaos plan must change the trace"
    );

    if let Ok(path) = std::env::var("CCAI_TRACE_DIGEST_OUT") {
        let dump = format!("fleet_chaos={}\n", a.telemetry().digest_hex());
        std::fs::write(&path, dump).expect("write digest dump");
    }
}

/// During a single-replica failover (crash, later a hot-plugged
/// replacement) no tenant's end-to-end p99 exceeds 3× its chaos-free
/// baseline — requeued requests keep their original arrival stamps, so
/// the failover delay is in these numbers, not hidden.
#[test]
fn failover_keeps_every_tenant_p99_within_3x_of_chaos_free() {
    const REQUESTS: u64 = 2_000;
    // Run below saturation: at an offered load the surviving replicas can
    // absorb, the failover transient (requeue + re-home) is the signal,
    // not an unbounded queue explosion.
    let light = |seed| {
        let mut cfg = chaos_config(seed);
        for t in &mut cfg.tenants {
            t.mean_interarrival = SimDuration::from_millis(120);
        }
        cfg
    };
    let base = run_with(light(0xFA11), ChaosPlan::default(), REQUESTS);
    let plan = ChaosPlan::new(vec![
        (at_ms(400), ChaosEvent::Crash { replica: 2 }),
        (at_ms(900), ChaosEvent::HotPlug { replica: 4 }),
    ]);
    let chaotic = run_with(light(0xFA11), plan, REQUESTS);
    assert!(
        chaotic.report().requeued > 0,
        "the crash must strike mid-round for this to exercise failover"
    );
    for (t, b) in chaotic.report().tenants.iter().zip(&base.report().tenants) {
        assert_eq!(t.tenant, b.tenant);
        let (Some(under), Some(solo)) = (&t.e2e_us, &b.e2e_us) else {
            continue;
        };
        if solo.p99() <= 0.0 {
            continue;
        }
        let ratio = under.p99() / solo.p99();
        assert!(
            ratio <= 3.0,
            "tenant {} e2e p99 regressed {ratio:.2}x under failover \
             (chaos-free {:.1} us, failover {:.1} us)",
            t.tenant,
            solo.p99(),
            under.p99()
        );
    }
}

/// A snapshot taken mid-chaos (events fired before it, events pending
/// after it, a batch in flight) resumes to a bit-identical end state.
#[test]
fn snapshot_resume_mid_chaos_is_bit_identical() {
    const REQUESTS: u64 = 1_600;
    let cfg = chaos_config(0x57A7);
    let plan = ChaosPlan::new(vec![
        (at_ms(300), ChaosEvent::Crash { replica: 0 }),
        (at_ms(500), ChaosEvent::Migrate { tenant: 202, to: 3 }),
        (at_ms(6_000), ChaosEvent::HotPlug { replica: 4 }),
        (at_ms(6_500), ChaosEvent::Drain { replica: 1 }),
    ]);

    let straight = run_with(cfg.clone(), plan.clone(), REQUESTS);

    let mut first = FleetServer::new(cfg.clone());
    first.set_chaos_plan(plan);
    first.generate(700);
    let mid = first.report();
    assert!(mid.chaos_events > 0, "snapshot point must be after some chaos");
    assert!(
        mid.chaos_events < straight.report().chaos_events,
        "snapshot point must be before the last chaos event"
    );
    let image = first.snapshot();
    let mut second = FleetServer::resume(cfg, &image).expect("mid-chaos image resumes");
    second.generate(REQUESTS);
    second.drain();

    assert_eq!(straight.telemetry().digest(), second.telemetry().digest());
    assert_eq!(straight.report().to_json(), second.report().to_json());
}

/// Layer B differential convergence: a real sharded fleet that suffers a
/// crash, admits an attested replacement, and live-migrates a tenant
/// produces bit-identical outputs to an untouched fleet.
#[test]
fn real_fleet_outputs_converge_under_crash_replacement_and_migration() {
    let weights = b"CHAOS-GOLDEN-WEIGHTS-".repeat(40);
    let tenants = [7u32, 19, 23, 64];
    let mut clean = ShardedFleet::deploy(XpuSpec::a100(), SystemMode::CcAi, &weights, 3)
        .expect("clean fleet deploys");
    let mut chaotic = ShardedFleet::deploy(XpuSpec::a100(), SystemMode::CcAi, &weights, 3)
        .expect("chaotic fleet deploys");

    let phase = |fleet: &mut ShardedFleet, tag: &str| -> Vec<Vec<u8>> {
        tenants
            .iter()
            .map(|&t| {
                let prompt = format!("tenant {t} prompt {tag}");
                fleet
                    .serve(t, prompt.as_bytes())
                    .unwrap_or_else(|e| panic!("serve tenant {t} phase {tag}: {e}"))
            })
            .collect()
    };

    let clean_one = phase(&mut clean, "one");
    let chaos_one = phase(&mut chaotic, "one");
    assert_eq!(clean_one, chaos_one, "fleets agree before chaos");

    // Chaos strikes the second fleet only: crash a replica, admit an
    // attested replacement under a fresh id, migrate a tenant onto it.
    chaotic.crash_replica(1).expect("crash succeeds");
    let fresh = chaotic.admit_replacement().expect("replacement re-attests");
    assert!(!clean.replica_ids().contains(&fresh) || fresh >= 3, "fresh id never reused");
    let m = chaotic.migrate_tenant(19, fresh).expect("migration succeeds");
    assert!(m.target_epoch > m.source_epoch, "migration must rotate keys");

    let clean_two = phase(&mut clean, "two");
    let chaos_two = phase(&mut chaotic, "two");
    assert_eq!(
        clean_two, chaos_two,
        "post-recovery outputs must match the chaos-free fleet bit-for-bit"
    );
    let expected = CommandProcessor::surrogate_inference(&weights, b"tenant 19 prompt two");
    assert_eq!(chaos_two[1], expected, "outputs are the golden surrogate results");
}

/// The rekey-in-flight argument, all three prongs:
///
/// 1. the migration receipt shows the target advanced the task epoch;
/// 2. a GCM seal under the source-epoch master refuses to open under the
///    target-epoch master (the keys really rotated, not just a counter);
/// 3. ciphertext TLPs captured on the source **before** the migration
///    are visibly suppressed when replayed into the target's fabric,
///    while post-migration serving succeeds — so a bus adversary cannot
///    launder pre-migration traffic through the new home.
#[test]
fn pre_migration_ciphertext_never_opens_on_the_target() {
    let weights = b"MIGRATION-SECRET-WEIGHTS-".repeat(30);
    let prompt = b"MIGRATION-SECRET-PROMPT-".repeat(8);
    let mut fleet = ShardedFleet::deploy(XpuSpec::a100(), SystemMode::CcAi, &weights, 2)
        .expect("fleet deploys");

    let tenant = 42u32;
    let from = fleet.shard_of(tenant);
    let to = fleet.replica_ids().into_iter().find(|&id| id != from).unwrap();

    // The bus adversary snoops the source replica's fabric during a
    // pre-migration confidential inference.
    let snooper = BusAdversary::new();
    fleet.shard_system_mut(from).fabric_mut().add_tap(snooper.tap());
    let pre = fleet.serve(tenant, &prompt).expect("pre-migration serve");
    assert_eq!(pre, CommandProcessor::surrogate_inference(&weights, &prompt));
    let tvm = fleet.shard_system(from).tvm_bdf();
    let captured: Vec<Tlp> = snooper
        .log()
        .of_type(TlpType::MemWrite)
        .into_iter()
        .filter(|tlp| {
            tlp.header().requester() == tvm
                && tlp.header().address().unwrap_or(0) >= layout::XPU_BAR_BASE
        })
        .cloned()
        .collect();
    assert!(!captured.is_empty(), "a protected run must emit MMIO ciphertext");

    let m = fleet.migrate_tenant(tenant, to).expect("migration succeeds");

    // Prong 1: the epoch advanced.
    assert_eq!(
        m.target_epoch,
        m.source_epoch + 1,
        "the target must rekey one epoch past the source"
    );

    // Prong 2: the epoch masters derive incompatible GCM keys. The
    // master is the deterministic TVM↔SC agreement both sides hold.
    let group = DhGroup::sim512();
    let tvm_kp = DhKeyPair::generate(&group, b"tvm-trust-module-boot-entropy-01");
    let sc_kp = DhKeyPair::generate(&group, b"hrot-blade-boot-entropy-00000002");
    let master = tvm_kp.agree(sc_kp.public()).expect("valid exchange");
    let source_gcm = AesGcm::new(&Key::Aes256(epoch_master(&master, m.source_epoch)));
    let target_gcm = AesGcm::new(&Key::Aes256(epoch_master(&master, m.target_epoch)));
    let nonce = [0x4Du8; NONCE_LEN];
    let sealed = source_gcm.seal(&nonce, b"pre-migration stream data", b"stream-aad");
    assert!(
        source_gcm.open(&nonce, &sealed, b"stream-aad").is_ok(),
        "the source epoch key opens its own seal"
    );
    assert!(
        target_gcm.open(&nonce, &sealed, b"stream-aad").is_err(),
        "the rotated epoch key must refuse pre-migration ciphertext"
    );

    // Prong 3: replay the pre-migration capture into the target. The
    // imported anti-replay floors cover every captured sequence, so the
    // exactly-once windows suppress them all — visibly.
    let target = fleet.shard_system_mut(to);
    let filter_before = target.sc_filter_digest();
    let before = target.sc_counters();
    for tlp in captured {
        target.fabric_mut().host_request(tlp);
    }
    let after = fleet.shard_system(to).sc_counters();
    assert_eq!(
        fleet.shard_system(to).sc_filter_digest(),
        filter_before,
        "replayed pre-migration traffic must not move the target's tables"
    );
    assert!(
        after.control_dup_suppressed > before.control_dup_suppressed
            || after.packets_blocked > before.packets_blocked,
        "the replay must be visibly refused, not silently absorbed"
    );
    assert!(
        fleet.shard_system(to).sc_quarantined_tenants().is_empty(),
        "suppression, not quarantine: the legitimate tenant is unharmed"
    );

    // Post-migration serving on the new home still computes the right
    // answer under the rotated keys.
    let post_prompt = b"POST-MIGRATION-PROMPT-".repeat(8);
    let post = fleet.serve(tenant, &post_prompt).expect("post-migration serve");
    assert_eq!(post, CommandProcessor::surrogate_inference(&weights, &post_prompt));
}
