//! §6 trust establishment, integrated: secure boot → attestation →
//! workload keys → sealing, including the failure paths a deployment
//! depends on.

use ccai_crypto::{DhGroup, Key, SchnorrKeyPair};
use ccai_trust::attest::{run_protocol, AttestationError, Platform, Verifier};
use ccai_trust::hrot::KeyCertificate;
use ccai_trust::keymgmt::StreamId;
use ccai_trust::pcr::PcrIndex;
use ccai_trust::sealing::{ChassisSensors, SensorReading};
use ccai_trust::secure_boot::{FlashImage, SecureBoot};
use ccai_trust::{HrotBlade, WorkloadKeyManager};
use ccai_xpu::{Xpu, XpuSpec};
use ccai_pcie::Bdf;
use std::collections::HashMap;

struct Deployment {
    group: DhGroup,
    vendor_ca: SchnorrKeyPair,
    blade: HrotBlade,
    golden: HashMap<usize, ccai_crypto::Digest>,
}

fn deploy() -> Deployment {
    let group = DhGroup::sim512();
    let vendor_ca = SchnorrKeyPair::generate(&group, &[0xCA; 32]);
    let mut blade = HrotBlade::manufacture(&group, &[0x01; 32]);
    blade.install_ek_certificate(KeyCertificate::issue(&vendor_ca, "EK", blade.ek_public()));

    // Secure boot from encrypted flash.
    let flash_key = Key::Aes128([0x5C; 16]);
    let bitstream = b"pf bitstream v1".to_vec();
    let firmware = b"sc firmware v1".to_vec();
    let boot = SecureBoot::for_pcie_sc(flash_key.clone(), &bitstream, &firmware);
    let flash = vec![
        FlashImage::provision("packet-filter-bitstream", &bitstream, &flash_key, [1; 12]),
        FlashImage::provision("sc-firmware", &firmware, &flash_key, [2; 12]),
    ];
    boot.boot(&mut blade, &flash).expect("clean boot");
    blade.boot_generate_ak(&[0x02; 32]);

    // Measure the attached xPU's firmware into its PCR (the "xPU with
    // HRoT / vendor signature" path of §6).
    let xpu = Xpu::new(XpuSpec::a100(), Bdf::new(0x17, 0, 0), 0x8000_0000);
    assert!(xpu.firmware().verify(), "vendor signature checks out");
    blade
        .pcrs_mut()
        .extend_assigned(PcrIndex::XpuFirmware, xpu.firmware().measurement().as_bytes());

    // Chassis sealed and polled.
    let mut sensors = ChassisSensors::default();
    for _ in 0..5 {
        sensors.poll(&mut blade);
    }

    let golden = [
        PcrIndex::ScBitstream,
        PcrIndex::ScFirmware,
        PcrIndex::XpuFirmware,
        PcrIndex::ChassisSeal,
    ]
    .into_iter()
    .map(|p| (p.index(), blade.pcrs().read_assigned(p)))
    .collect();

    Deployment { group, vendor_ca, blade, golden }
}

const SELECTION: [usize; 4] = [1, 2, 4, 5];

#[test]
fn full_chain_accepts_a_clean_platform() {
    let d = deploy();
    let mut platform = Platform::new(d.blade, &d.group, &[0x03; 32]);
    let mut verifier =
        Verifier::new(d.vendor_ca.public().clone(), &d.group, &[0x04; 32], d.golden);
    run_protocol(&mut verifier, &mut platform, &SELECTION, [0x11; 32]).unwrap();
}

#[test]
fn tampered_xpu_firmware_breaks_attestation() {
    let d = deploy();
    // A second deployment where the xPU firmware was tampered after
    // signing: the measurement extended into the PCR differs.
    let group = d.group.clone();
    let mut blade = HrotBlade::manufacture(&group, &[0x01; 32]);
    blade.install_ek_certificate(KeyCertificate::issue(&d.vendor_ca, "EK", blade.ek_public()));
    let flash_key = Key::Aes128([0x5C; 16]);
    let boot = SecureBoot::for_pcie_sc(flash_key.clone(), b"pf bitstream v1", b"sc firmware v1");
    let flash = vec![
        FlashImage::provision("packet-filter-bitstream", b"pf bitstream v1", &flash_key, [1; 12]),
        FlashImage::provision("sc-firmware", b"sc firmware v1", &flash_key, [2; 12]),
    ];
    boot.boot(&mut blade, &flash).unwrap();
    blade.boot_generate_ak(&[0x02; 32]);

    let mut xpu = Xpu::new(XpuSpec::a100(), Bdf::new(0x17, 0, 0), 0x8000_0000);
    xpu.firmware_mut().tamper(3);
    assert!(!xpu.firmware().verify(), "tamper visible at signature check");
    // Suppose the operator extends the tampered measurement anyway:
    let tampered_measure = ccai_crypto::sha256(xpu.firmware().image());
    blade
        .pcrs_mut()
        .extend_assigned(PcrIndex::XpuFirmware, tampered_measure.as_bytes());
    let mut sensors = ChassisSensors::default();
    for _ in 0..5 {
        sensors.poll(&mut blade);
    }

    let mut platform = Platform::new(blade, &group, &[0x03; 32]);
    let mut verifier =
        Verifier::new(d.vendor_ca.public().clone(), &group, &[0x04; 32], d.golden);
    assert_eq!(
        run_protocol(&mut verifier, &mut platform, &SELECTION, [0x12; 32]),
        Err(AttestationError::PcrMismatch { index: PcrIndex::XpuFirmware.index() })
    );
}

#[test]
fn chassis_breach_breaks_subsequent_attestation() {
    let mut d = deploy();
    // Physical tamper after deployment.
    let mut sensors = ChassisSensors::default();
    sensors.inject_reading(SensorReading { lid_closed: false, ..SensorReading::nominal() });
    sensors.poll(&mut d.blade);

    let mut platform = Platform::new(d.blade, &d.group, &[0x03; 32]);
    let mut verifier =
        Verifier::new(d.vendor_ca.public().clone(), &d.group, &[0x04; 32], d.golden);
    assert_eq!(
        run_protocol(&mut verifier, &mut platform, &SELECTION, [0x13; 32]),
        Err(AttestationError::PcrMismatch { index: PcrIndex::ChassisSeal.index() })
    );
}

#[test]
fn counterfeit_blade_fails_the_certificate_chain() {
    let d = deploy();
    // A blade whose EK was certified by a different (attacker) CA.
    let attacker_ca = SchnorrKeyPair::generate(&d.group, &[0xBB; 32]);
    let mut fake = HrotBlade::manufacture(&d.group, &[0x0F; 32]);
    fake.install_ek_certificate(KeyCertificate::issue(&attacker_ca, "EK", fake.ek_public()));
    fake.boot_generate_ak(&[0x10; 32]);

    let mut platform = Platform::new(fake, &d.group, &[0x03; 32]);
    let mut verifier =
        Verifier::new(d.vendor_ca.public().clone(), &d.group, &[0x04; 32], d.golden);
    assert_eq!(
        run_protocol(&mut verifier, &mut platform, &SELECTION, [0x14; 32]),
        Err(AttestationError::UntrustedEk)
    );
}

#[test]
fn workload_keys_follow_attestation_and_die_with_the_task() {
    let d = deploy();
    let mut platform = Platform::new(d.blade, &d.group, &[0x03; 32]);
    let mut verifier =
        Verifier::new(d.vendor_ca.public().clone(), &d.group, &[0x04; 32], d.golden);
    run_protocol(&mut verifier, &mut platform, &SELECTION, [0x15; 32]).unwrap();

    // Post-attestation key negotiation (both sides derive from a shared
    // secret; here the DH agreement stands in).
    let master = [0x42u8; 32];
    let mut tvm = WorkloadKeyManager::new(master);
    let mut sc = WorkloadKeyManager::new(master);
    for side in [&mut tvm, &mut sc] {
        side.provision_stream(StreamId(1), 1000);
        side.provision_stream(StreamId(2), 1000);
    }
    assert_eq!(tvm.stream_key(StreamId(1)).unwrap(), sc.stream_key(StreamId(1)).unwrap());
    assert_ne!(
        tvm.stream_key(StreamId(1)).unwrap(),
        tvm.stream_key(StreamId(2)).unwrap()
    );

    // Termination destroys both copies (§6).
    tvm.destroy();
    sc.destroy();
    assert!(tvm.is_destroyed() && sc.is_destroyed());
    assert!(tvm.stream_key(StreamId(1)).is_err());
}

#[test]
fn attestation_is_bound_to_the_session_key() {
    // A MITM who relays messages cannot splice sessions: the report is
    // sealed under the DH session key, so a verifier with a different
    // session cannot open it.
    let d = deploy();
    let mut platform = Platform::new(d.blade, &d.group, &[0x03; 32]);
    let mut verifier_a =
        Verifier::new(d.vendor_ca.public().clone(), &d.group, &[0x04; 32], d.golden.clone());
    let mut verifier_b =
        Verifier::new(d.vendor_ca.public().clone(), &d.group, &[0x05; 32], d.golden);

    // Platform pairs with A.
    let platform_pub = platform.key_exchange(&verifier_a.dh_public()).unwrap();
    verifier_a.complete_key_exchange(&platform_pub).unwrap();
    // B (different DH key) cannot read A's certificate message.
    verifier_b.complete_key_exchange(&platform_pub).unwrap();
    let certs = platform.certificates().unwrap();
    assert!(verifier_a.check_certificates(&certs).is_ok());
    assert_eq!(
        verifier_b.check_certificates(&certs),
        Err(AttestationError::BadSessionCiphertext)
    );
}
