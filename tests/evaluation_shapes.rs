//! Cross-checks every regenerated table/figure against the *shape* of the
//! paper's results: who wins, by roughly what factor, and where the knees
//! fall. Absolute seconds are simulation artifacts; these relations are
//! the reproduction targets (see EXPERIMENTS.md).

use ccai_bench::figures;
use ccai_core::compat;

#[test]
fn headline_claim_overheads_within_the_abstract_band() {
    // Abstract: "low (0.05% – 5.67%) performance overhead".
    let mut all: Vec<(String, f64)> = Vec::new();
    for p in figures::fig8_fix_batch()
        .iter()
        .chain(figures::fig8_fix_token().iter())
        .chain(figures::fig9().iter())
        .chain(figures::fig10().iter())
        .chain(figures::fig12a().iter())
    {
        all.push((p.label.clone(), p.e2e_overhead()));
    }
    for (label, overhead) in &all {
        assert!(
            (0.0..0.07).contains(overhead),
            "{label}: E2E overhead {overhead} outside the reproduction band"
        );
    }
    // Something must be non-trivially protected: max above 3%.
    let max = all.iter().map(|(_, o)| *o).fold(0.0f64, f64::max);
    assert!(max > 0.03, "max overhead {max} suspiciously low — is crypto on?");
}

#[test]
fn fig8_token_sweep_e2e_scales_roughly_linearly() {
    let points = figures::fig8_fix_batch();
    let e2e: Vec<f64> = points.iter().map(|p| p.vanilla.e2e.as_secs_f64()).collect();
    // 2048 tokens ≈ 32× the decode work of 64 tokens; with fixed prefill
    // cost the ratio should land between 20× and 32×.
    let ratio = e2e[5] / e2e[0];
    assert!((20.0..35.0).contains(&ratio), "E2E scaling ratio {ratio}");
}

#[test]
fn fig8_paper_observation_token_increase_does_not_spike_overhead() {
    // §8.3: "expanding the input token size from 1024-tok to 2048-tok
    // adds merely 0.08% overhead".
    let points = figures::fig8_fix_batch();
    let at_1024 = points[4].e2e_overhead();
    let at_2048 = points[5].e2e_overhead();
    assert!((at_2048 - at_1024).abs() < 0.002);
}

#[test]
fn fig8_paper_observation_batch_knee_then_plateau() {
    // §8.3: "TPS overhead increases by 3.39% between 12-bat and 24-bat,
    // but only 0.47% between 24-bat and 48-bat".
    let points = figures::fig8_fix_token();
    let loss = |label: &str| {
        points.iter().find(|p| p.label == label).unwrap().tps_loss()
    };
    let jump_12_24 = loss("24-bat") - loss("12-bat");
    let jump_24_48 = loss("48-bat") - loss("24-bat");
    assert!(jump_12_24 > 2.0 * jump_24_48, "knee {jump_12_24} vs plateau {jump_24_48}");
}

#[test]
fn fig8_ttft_overhead_larger_for_smaller_tokens() {
    // §8.3: "ccAI performs better on benchmarks with larger-size tokens
    // (e.g., 5.45% in 64-tok and 1.13% in 2048-tok)".
    let points = figures::fig8_fix_batch();
    let first = points.first().unwrap().ttft_overhead();
    let last = points.last().unwrap().ttft_overhead();
    assert!(first > 2.0 * last, "TTFT amortization: {first} vs {last}");
    assert!((0.02..0.08).contains(&first));
}

#[test]
fn fig9_overhead_not_linear_in_model_size() {
    // §8.4: "this bandwidth-related overhead does not scale linearly with
    // model parameter size (e.g., 2.14% on Deepseek-r1-70b and 2.84% on
    // Babel-83b)" — both smaller than Deepseek-r1-32b's 4.76%.
    let points = figures::fig9();
    let by_name = |name: &str| points.iter().find(|p| p.label == name).unwrap().e2e_overhead();
    assert!(by_name("Deepseek-r1-70b") < by_name("Deepseek-r1-32b"));
    assert!(by_name("Babel-83b") < by_name("Deepseek-r1-32b"));
}

#[test]
fn fig10_every_vendor_protected_cheaply() {
    let points = figures::fig10();
    let labels: Vec<&str> = points.iter().map(|p| p.label.as_str()).collect();
    assert_eq!(
        labels,
        ["NVIDIA A100", "NVIDIA T4", "NVIDIA RTX4090Ti", "Enflame S60", "Tenstorrent N150d"]
    );
    for p in &points {
        assert!(p.e2e_overhead() < 0.04, "{}", p.label);
    }
}

#[test]
fn fig11_reduction_is_stable_across_workload_scale() {
    // §8.5: "changes in token/batch size have minimal impact on our
    // optimization's effectiveness" — reductions all within a few points
    // of each other, in the 88–90%+ region.
    let all: Vec<f64> = figures::fig11_fix_batch()
        .iter()
        .chain(figures::fig11_fix_token().iter())
        .map(figures::AblationPoint::reduction)
        .collect();
    let min = all.iter().copied().fold(1.0f64, f64::min);
    let max = all.iter().copied().fold(0.0f64, f64::max);
    assert!(min > 0.85, "min reduction {min}");
    assert!(max < 0.95, "max reduction {max}");
    assert!(max - min < 0.06, "stability band {min}..{max}");
}

#[test]
fn fig12a_limited_bandwidth_does_not_amplify_overhead() {
    // §8.6: "ccAI does not introduce higher performance overhead when
    // PCIe speed/lanes are limited".
    let points = figures::fig12a();
    let full = points[0].e2e_overhead();
    for p in &points[1..] {
        assert!(
            p.e2e_overhead() < full + 0.05,
            "{}: {} vs full-bandwidth {}",
            p.label,
            p.e2e_overhead(),
            full
        );
    }
}

#[test]
fn fig12b_relative_performance_near_paper_value() {
    // §8.6: "both ccAI and the native system reduce performance to ~83%…
    // ccAI only introduces a low addition (less than 2%)".
    for p in figures::fig12b() {
        assert!((0.75..0.97).contains(&p.vanilla_relative()), "{}", p.label);
        assert!(p.ccai_added() < 0.02, "{}: +{}", p.label, p.ccai_added());
    }
}

#[test]
fn tables_match_paper_values() {
    assert_eq!(compat::table2().len(), 18);
    let (loc, _, regs, brams) = compat::table3_totals();
    assert_eq!(loc, 3_100);
    assert_eq!(regs, 195_700);
    assert_eq!(brams, 630);
}

#[test]
fn granularity_ablation_supports_the_secure_pcie_argument() {
    // §8.1 "Comparison to secure PCIe": full-link encryption would cost
    // strictly more than selective packet-level protection.
    let (selective, full_link) = figures::ablation_granularity();
    assert!(full_link > 3.0 * selective, "selective {selective} vs full {full_link}");
}
