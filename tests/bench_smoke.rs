//! Smoke test over the whole criterion bench suite.
//!
//! Each bench file is compiled into this harness as a module and its
//! `criterion_group!`-generated entry point is called once with
//! `CCAI_BENCH_SMOKE` set, which makes the vendored criterion run every
//! bench body exactly once instead of timing it. This keeps all eight
//! bench targets compile- and run-checked by the ordinary `cargo test`
//! gate: a bench that panics or stops building fails the tier-1 suite
//! instead of rotting until someone runs `cargo bench`.

#[path = "../crates/bench/benches/ablations.rs"]
mod ablations;
#[path = "../crates/bench/benches/crypto_throughput.rs"]
mod crypto_throughput;
#[path = "../crates/bench/benches/datapath.rs"]
mod datapath;
#[path = "../crates/bench/benches/fig10_devices.rs"]
mod fig10_devices;
#[path = "../crates/bench/benches/fig11_optimizations.rs"]
mod fig11_optimizations;
#[path = "../crates/bench/benches/fig12_stress.rs"]
mod fig12_stress;
#[path = "../crates/bench/benches/fig8_llama_sweeps.rs"]
mod fig8_llama_sweeps;
#[path = "../crates/bench/benches/fig9_models.rs"]
mod fig9_models;

#[test]
fn every_bench_body_runs_once() {
    std::env::set_var("CCAI_BENCH_SMOKE", "1");
    ablations::benches();
    crypto_throughput::benches();
    datapath::benches();
    fig10_devices::benches();
    fig11_optimizations::benches();
    fig12_stress::benches();
    fig8_llama_sweeps::benches();
    fig9_models::benches();
}
