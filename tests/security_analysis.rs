//! §8.2 security analysis, executed: every adversary from the threat
//! model attacks the assembled system, and every attack is blocked or
//! detected while the vanilla baseline demonstrably falls.

use ccai_core::sc::ScAlert;
use ccai_core::system::{layout, ConfidentialSystem, SystemMode};
use ccai_pcie::{parse_ctrl_envelope, Bdf, BusAdversary, FaultPlan, TamperMode, Tlp, TlpType, WireAttack};
use ccai_tvm::hypervisor::AttackOutcome;
use ccai_tvm::HostAdversary;
use ccai_xpu::{CommandProcessor, XpuSpec};

fn secrets() -> (Vec<u8>, Vec<u8>) {
    (
        b"WEIGHTS-SECRET-".repeat(700),
        b"PROMPT-SECRET--".repeat(40),
    )
}

#[test]
fn vanilla_platform_leaks_everything_to_a_snooper() {
    let (weights, prompt) = secrets();
    let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::Vanilla);
    let snooper = BusAdversary::new();
    system.fabric_mut().add_tap(snooper.tap());
    system.run_workload(&weights, &prompt).unwrap();
    assert!(snooper.log().leaked(&weights[..15]));
    assert!(snooper.log().leaked(&prompt[..15]));
}

#[test]
fn ccai_defeats_pcie_snooping() {
    let (weights, prompt) = secrets();
    let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    let snooper = BusAdversary::new();
    system.fabric_mut().add_tap(snooper.tap());
    let result = system.run_workload(&weights, &prompt).unwrap();
    assert_eq!(result, CommandProcessor::surrogate_inference(&weights, &prompt));
    // The snooper saw plenty of traffic but none of the plaintext.
    assert!(snooper.log().len() > 50);
    assert!(!snooper.log().leaked(&weights[..15]));
    assert!(!snooper.log().leaked(&prompt[..15]));
    // Even short fragments stay hidden.
    assert!(!snooper.log().leaked(b"WEIGHTS-SECRET"));
}

#[derive(Debug)]
struct DataTamper;
impl WireAttack for DataTamper {
    fn mangle(&mut self, tlp: Tlp, downstream: bool) -> Option<Tlp> {
        if downstream && tlp.header().tlp_type() == TlpType::CompletionData
            && tlp.payload().len() >= 64
        {
            Some(TamperMode::BitFlip { byte: 7, bit: 1 }.apply(tlp))
        } else {
            Some(tlp)
        }
    }
}

#[test]
fn ccai_detects_in_flight_tampering() {
    let (weights, prompt) = secrets();
    let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    system.fabric_mut().set_wire_attack(Box::new(DataTamper));
    let verdict = system.run_workload(&weights, &prompt);
    assert!(verdict.is_err(), "tampered data must not produce a result");
    let alerts = system.sc().unwrap().alerts();
    assert!(
        alerts.iter().any(|a| matches!(a, ScAlert::CryptFailure { .. })),
        "the SC records the authentication failure: {alerts:?}"
    );
}

/// Deletes ciphertext completions outright (the §8.2 packet-deletion
/// attack).
#[derive(Debug)]
struct PacketDeleter {
    dropped: u32,
}
impl WireAttack for PacketDeleter {
    fn mangle(&mut self, tlp: Tlp, downstream: bool) -> Option<Tlp> {
        if downstream
            && tlp.header().tlp_type() == TlpType::CompletionData
            && tlp.payload().len() >= 4096
            && self.dropped == 0
        {
            self.dropped += 1;
            return None;
        }
        Some(tlp)
    }
}

#[test]
fn ccai_surfaces_packet_deletion_as_failure() {
    // With retries disabled, a deleted ciphertext completion is a hard,
    // visible failure — never a silent wrong result.
    let (weights, prompt) = secrets();
    let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    system
        .driver_mut()
        .set_retry_policy(ccai_tvm::RetryPolicy { max_attempts: 1, backoff_base: 2, ..Default::default() });
    system.fabric_mut().set_wire_attack(Box::new(PacketDeleter { dropped: 0 }));
    let verdict = system.run_workload(&weights, &prompt);
    assert!(verdict.is_err(), "missing data cannot silently succeed");

    // Under the default retry policy the same one-shot deletion is
    // transparently recovered — with a correct result, not a wrong one.
    let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    system.fabric_mut().set_wire_attack(Box::new(PacketDeleter { dropped: 0 }));
    let result = system.run_workload(&weights, &prompt).expect("one drop is retried");
    assert_eq!(result, CommandProcessor::surrogate_inference(&weights, &prompt));
    assert!(system.driver().dma_retries() > 0, "recovery went through the retry path");
}

#[test]
fn rogue_requester_blocked_by_l1_table() {
    let (weights, prompt) = secrets();
    let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    system.run_workload(&weights, &prompt).unwrap();

    let rogue = Bdf::new(9, 9, 0);
    // Try to read the model out of device memory (BAR1 aperture).
    let bar1 = layout::XPU_BAR_BASE + (1 << 28);
    let replies = system
        .fabric_mut()
        .host_request(BusAdversary::craft_forged_read(rogue, bar1 + layout::DEV_WEIGHTS, 64));
    assert!(replies.iter().all(|r| r.payload().is_empty()), "no data for the rogue");

    // Try to overwrite the weights.
    let before = system.sc_counters().packets_blocked;
    system
        .fabric_mut()
        .host_request(BusAdversary::craft_forged_write(rogue, bar1 + layout::DEV_WEIGHTS, vec![0; 64]));
    assert!(system.sc_counters().packets_blocked > before);

    // The workload still runs correctly afterwards: nothing was damaged.
    let result = system.run_workload(&weights, &prompt).unwrap();
    assert_eq!(result, CommandProcessor::surrogate_inference(&weights, &prompt));
}

#[test]
fn rogue_cannot_reconfigure_the_sc() {
    let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    system.run_workload(b"w", b"i").unwrap();
    let rogue = Bdf::new(9, 9, 0);
    // Attempt to point the tag landing buffer at attacker memory.
    system.fabric_mut().host_request(Tlp::memory_write(
        rogue,
        layout::SC_REGION + ccai_core::sc::regs::TAG_LANDING_ADDR,
        0xDEAD_0000u64.to_le_bytes().to_vec(),
    ));
    let alerts = system.sc().unwrap().alerts();
    assert!(
        alerts
            .iter()
            .any(|a| matches!(a, ScAlert::ControlAccessDenied { .. })),
        "control-window access from a rogue must be denied: {alerts:?}"
    );
    // System still healthy.
    system.run_workload(b"w2", b"i2").unwrap();
}

#[test]
fn replayed_data_chunks_are_rejected() {
    // Replay is exercised at the SC level: seeing the same (stream, seq)
    // twice is refused even with a valid tag. The system-level proof is
    // that a full rerun of the same workload uses fresh streams and
    // succeeds, while the SC's replay counter stays zero in clean runs.
    let (weights, prompt) = secrets();
    let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    system.run_workload(&weights, &prompt).unwrap();
    system.run_workload(&weights, &prompt).unwrap();
    assert_eq!(system.sc().unwrap().replays_blocked(), 0);
}

#[test]
fn quarantine_survives_replayed_control_window_tlps() {
    // A bus adversary records the TVM's sequenced control-window writes
    // during a healthy run, waits for the tenant to be quarantined, then
    // replays the capture hoping to reprogram the SC or revive the
    // channel. Every replayed write carries a stale sequence number, so
    // the exactly-once window rejects it: the quarantine holds, the
    // filter tables do not move, and data accesses stay A1-denied.
    let (weights, prompt) = secrets();
    let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    let snooper = BusAdversary::new();
    system.fabric_mut().add_tap(snooper.tap());
    system.run_workload(&weights, &prompt).unwrap();

    let log = snooper.log();
    let captured: Vec<Tlp> = log
        .of_type(TlpType::MemWrite)
        .into_iter()
        .filter(|t| {
            let addr = t.header().address().unwrap_or(0);
            (layout::SC_REGION..layout::SC_REGION + ccai_core::sc::regs::WINDOW_LEN)
                .contains(&addr)
                && parse_ctrl_envelope(t.payload()).is_some()
        })
        .cloned()
        .collect();
    assert!(!captured.is_empty(), "a protected run must emit sequenced control writes");

    // Unrelenting corruption trips the quarantine, then the injector is
    // removed so everything below is the adversary acting alone.
    system.inject_faults(FaultPlan::corrupt_only(0xBAD, 1024));
    assert!(system.run_workload(&weights, &prompt).is_err(), "channel is unrecoverable");
    system.clear_faults();
    let xpu_bdf = Bdf::new(layout::XPU_BDF.0, layout::XPU_BDF.1, layout::XPU_BDF.2);
    assert!(system.sc().unwrap().is_quarantined(xpu_bdf));

    let filter_before = system.sc_filter_digest();
    let before = system.sc_counters();
    for tlp in captured {
        system.fabric_mut().host_request(tlp);
    }
    let after = system.sc_counters();

    assert!(
        system.sc().unwrap().is_quarantined(xpu_bdf),
        "replayed control writes must not lift the quarantine"
    );
    assert_eq!(
        system.sc_filter_digest(),
        filter_before,
        "stale control sequences must not move the filter tables"
    );
    assert!(
        after.control_dup_suppressed > before.control_dup_suppressed
            || after.packets_blocked > before.packets_blocked,
        "the replay must be visibly rejected, not silently absorbed"
    );

    // Data-path access from the quarantined tenant is still A1-denied.
    let probe = Tlp::memory_read(system.tvm_bdf(), layout::XPU_BAR_BASE, 8, 0x7B);
    let replies = system.fabric_mut().host_request(probe);
    assert!(
        replies.iter().all(|r| r.payload().is_empty()),
        "quarantined tenant must stay A1-denied after the replay"
    );
}

#[test]
fn host_adversary_cannot_read_private_tvm_memory() {
    let (weights, prompt) = secrets();
    let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    system.run_workload(&weights, &prompt).unwrap();
    let mut host = HostAdversary::new();
    for addr in [0u64, 0x1000, 0x7F_0000] {
        assert_eq!(
            host.read_tvm_memory(system.memory(), addr, 64),
            AttackOutcome::Blocked,
            "private page at {addr:#x}"
        );
    }
}

#[test]
fn bounce_buffers_hold_only_ciphertext() {
    let (weights, prompt) = secrets();
    let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    system.run_workload(&weights, &prompt).unwrap();
    let mut host = HostAdversary::new();
    match host.read_tvm_memory(system.memory(), layout::STAGING_BASE, weights.len() as u64) {
        AttackOutcome::Leaked(bytes) => {
            assert_ne!(bytes, weights, "bounce buffer must not hold plaintext");
            // No 15-byte window of the secret shows through.
            assert!(
                !bytes.windows(15).any(|w| w == &weights[..15]),
                "plaintext fragment visible in the bounce buffer"
            );
        }
        other => panic!("shared pages are host-visible by design, got {other:?}"),
    }
}

#[test]
fn environment_guard_blocks_page_table_retargeting() {
    let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    system.run_workload(b"w", b"i").unwrap();
    // Register a guarded page-table base, then attack it via the Adaptor
    // port (so the MMIO integrity tag is valid — the *value* is the attack).
    let guarded_addr = layout::XPU_BAR_BASE + 0x40;
    let tvm = system.tvm_bdf();
    let (_, _, _, _, adaptor) = system.parts();
    let adaptor = adaptor.expect("ccai mode");
    {
        let fabric = system.fabric_mut();
        let mut port = adaptor.port(fabric);
        adaptor.guard_register(&mut port, guarded_addr, 0xAB00_0000);
        use ccai_tvm::TlpPort;
        port.request(Tlp::memory_write(
            tvm,
            guarded_addr,
            0xBAD0_0000u64.to_le_bytes().to_vec(),
        ));
    }
    let alerts = system.sc().unwrap().alerts();
    assert!(
        alerts
            .iter()
            .any(|a| matches!(a, ScAlert::WriteProtectFailure { .. })),
        "page-table retargeting must be caught: {alerts:?}"
    );
}

#[test]
fn every_device_survives_the_snooping_battery() {
    let (weights, prompt) = secrets();
    for spec in XpuSpec::evaluation_set() {
        let name = spec.name().to_string();
        let mut system = ConfidentialSystem::build(spec, SystemMode::CcAi);
        let snooper = BusAdversary::new();
        system.fabric_mut().add_tap(snooper.tap());
        system.run_workload(&weights, &prompt).unwrap();
        assert!(!snooper.log().leaked(&weights[..15]), "{name} leaked weights");
        assert!(!snooper.log().leaked(&prompt[..15]), "{name} leaked prompt");
    }
}

#[test]
fn quarantine_and_replay_protection_survive_snapshot_resume() {
    // Live migration must not be a security reset: an operator
    // snapshots a system whose tenant is quarantined, resumes it
    // elsewhere, and the adversary replays a captured control-window
    // session against the *resumed* instance. The quarantine must hold
    // across the snapshot boundary, and the resumed exactly-once window
    // must still refuse every stale sequence number.
    let (weights, prompt) = secrets();
    let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    let snooper = BusAdversary::new();
    system.fabric_mut().add_tap(snooper.tap());
    system.run_workload(&weights, &prompt).unwrap();

    let captured: Vec<Tlp> = snooper
        .log()
        .of_type(TlpType::MemWrite)
        .into_iter()
        .filter(|t| {
            let addr = t.header().address().unwrap_or(0);
            (layout::SC_REGION..layout::SC_REGION + ccai_core::sc::regs::WINDOW_LEN)
                .contains(&addr)
                && parse_ctrl_envelope(t.payload()).is_some()
        })
        .cloned()
        .collect();
    assert!(!captured.is_empty(), "a protected run must emit sequenced control writes");

    // Trip the quarantine, then snapshot the poisoned system and resume
    // it into a fresh instance (topology rebuilt, keys re-derived).
    system.inject_faults(FaultPlan::corrupt_only(0xBAD, 1024));
    assert!(system.run_workload(&weights, &prompt).is_err(), "channel is unrecoverable");
    system.clear_faults();
    let xpu_bdf = Bdf::new(layout::XPU_BDF.0, layout::XPU_BDF.1, layout::XPU_BDF.2);
    assert!(system.sc().unwrap().is_quarantined(xpu_bdf));

    let snap = system.snapshot();
    drop(system);
    let mut resumed = ConfidentialSystem::resume(&snap).expect("resume");
    assert!(
        resumed.sc().unwrap().is_quarantined(xpu_bdf),
        "resume must not launder a quarantine"
    );

    let filter_before = resumed.sc_filter_digest();
    let before = resumed.sc_counters();
    for tlp in captured {
        resumed.fabric_mut().host_request(tlp);
    }
    let after = resumed.sc_counters();

    assert!(
        resumed.sc().unwrap().is_quarantined(xpu_bdf),
        "replayed control writes must not lift the quarantine after resume"
    );
    assert_eq!(
        resumed.sc_filter_digest(),
        filter_before,
        "stale control sequences must not move the resumed filter tables"
    );
    assert!(
        after.control_dup_suppressed > before.control_dup_suppressed
            || after.packets_blocked > before.packets_blocked,
        "the replay must be visibly rejected by the resumed SC"
    );

    // Data-path access from the quarantined tenant stays A1-denied on
    // the resumed instance too.
    let probe = Tlp::memory_read(resumed.tvm_bdf(), layout::XPU_BAR_BASE, 8, 0x7B);
    let replies = resumed.fabric_mut().host_request(probe);
    assert!(
        replies.iter().all(|r| r.payload().is_empty()),
        "quarantined tenant must stay A1-denied after snapshot/resume"
    );
}

#[test]
fn quarantine_and_replay_floors_survive_a_power_cycle() {
    // The reset-replay attack of the bring-up battery, driven end to
    // end at the security-analysis level: an SC power cycle clears all
    // volatile state, but the quarantine flag and the exactly-once
    // sequence floors ride the persistent state across the cycle. A
    // captured pre-reset control session replayed after a clean
    // re-attested bring-up is refused wholesale.
    let (weights, prompt) = secrets();
    let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    let snooper = BusAdversary::new();
    system.fabric_mut().add_tap(snooper.tap());
    system.run_workload(&weights, &prompt).unwrap();

    let captured: Vec<Tlp> = snooper
        .log()
        .of_type(TlpType::MemWrite)
        .into_iter()
        .filter(|t| {
            let addr = t.header().address().unwrap_or(0);
            (layout::SC_REGION..layout::SC_REGION + ccai_core::sc::regs::WINDOW_LEN)
                .contains(&addr)
                && parse_ctrl_envelope(t.payload()).is_some()
        })
        .cloned()
        .collect();
    assert!(!captured.is_empty(), "a protected run must emit sequenced control writes");

    system.inject_faults(FaultPlan::corrupt_only(0xBAD, 1024));
    assert!(system.run_workload(&weights, &prompt).is_err(), "channel is unrecoverable");
    system.clear_faults();
    let xpu_bdf = Bdf::new(layout::XPU_BDF.0, layout::XPU_BDF.1, layout::XPU_BDF.2);
    assert!(system.sc().unwrap().is_quarantined(xpu_bdf));

    system.reset().expect("power cycle");
    assert!(!system.sc_is_serving(), "a reset SC must not serve");
    assert!(
        system.sc().unwrap().is_quarantined(xpu_bdf),
        "a power cycle must not launder a quarantine"
    );
    system.complete_bringup().expect("fresh attested bring-up");
    assert!(system.sc_is_serving());

    let filter_before = system.sc_filter_digest();
    let before = system.sc_counters();
    for tlp in captured {
        system.fabric_mut().host_request(tlp);
    }
    let after = system.sc_counters();

    assert!(
        system.sc().unwrap().is_quarantined(xpu_bdf),
        "replayed control writes must not lift the quarantine after a power cycle"
    );
    assert_eq!(
        system.sc_filter_digest(),
        filter_before,
        "stale pre-reset control sequences must not move the filter tables"
    );
    assert!(
        after.control_dup_suppressed > before.control_dup_suppressed
            || after.packets_blocked > before.packets_blocked,
        "the replay must be visibly rejected by the reborn SC"
    );

    let probe = Tlp::memory_read(system.tvm_bdf(), layout::XPU_BAR_BASE, 8, 0x7B);
    let replies = system.fabric_mut().host_request(probe);
    assert!(
        replies.iter().all(|r| r.payload().is_empty()),
        "quarantined tenant must stay A1-denied after the power cycle"
    );
}

#[test]
fn control_authority_is_scoped_to_the_sc_trust_domain() {
    // Keys released for one SC are worthless against another trust
    // domain: an Adaptor holding a different attested master cannot
    // install policy — every control write fails the MAC check and the
    // SC's installed tables do not move.
    let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    system.run_workload(b"w", b"i").unwrap();
    let filter_before = system.sc_filter_digest();

    // Any constant is foreign: the real master is DH-derived during
    // attestation and never equals a fixed pattern.
    let foreign_master = [0x5A; 32];
    let (_, _, _, _, adaptor) = system.parts();
    let adaptor = adaptor.expect("ccai mode");
    let installed = {
        let fabric = system.fabric_mut();
        let mut port = adaptor.port(fabric);
        adaptor.install_default_policy(&mut port, &foreign_master)
    };
    assert!(!installed, "a foreign-keyed Adaptor must not configure this SC");
    assert_eq!(
        system.sc_filter_digest(),
        filter_before,
        "rejected foreign control writes must not move the filter tables"
    );
    // The rightful tenant is unharmed.
    system.run_workload(b"w2", b"i2").unwrap();
}

#[test]
fn quarantine_is_contained_to_the_tripped_shard() {
    // Trust topology across a fleet: each shard has its own PCIe-SC,
    // and containment state is per-SC. Tripping the quarantine on one
    // shard must not bleed SC-level admission state onto the healthy
    // shards — they keep serving their own data paths untouched.
    use ccai_llm::fleet::ShardedFleet;

    let (weights, prompt) = secrets();
    let mut fleet = ShardedFleet::deploy(XpuSpec::a100(), SystemMode::CcAi, &weights, 4)
        .expect("sharded fleet deploys");
    let victim = 2u32;
    {
        let system = fleet.shard_system_mut(victim);
        system.inject_faults(FaultPlan::corrupt_only(0xBAD, 1024));
        assert!(system.run_workload(&weights, &prompt).is_err());
        system.clear_faults();
    }

    let xpu_bdf = Bdf::new(layout::XPU_BDF.0, layout::XPU_BDF.1, layout::XPU_BDF.2);
    for shard in 0..4 {
        assert_eq!(
            fleet.shard_system(shard).sc().unwrap().is_quarantined(xpu_bdf),
            shard == victim,
            "quarantine state must be exactly per-SC, shard {shard}"
        );
    }

    // A healthy shard's SC still admits its tenant's data path.
    let healthy = (victim + 1) % 4;
    assert!(
        fleet.shard_system_mut(healthy).run_workload(&weights, &prompt).is_ok(),
        "healthy shards keep serving"
    );
    // The victim's SC does not.
    assert!(
        fleet.shard_system_mut(victim).run_workload(&weights, &prompt).is_err(),
        "the tripped shard stays contained"
    );
}

#[test]
fn quarantine_is_honored_by_every_shard_and_shed_at_admission() {
    // Containment must be fleet-wide: when one shard's PCIe-SC
    // quarantines a tenant, the tenant cannot dodge it by landing on a
    // healthy shard, and the serving layer sheds its requests at
    // admission with a typed reason instead of silently dropping them.
    use ccai_llm::fleet::{ServeError, ShardedFleet};
    use ccai_llm::serve::{FleetConfig, FleetServer, TenantSpec};
    use ccai_sim::SimDuration;

    let (weights, prompt) = secrets();
    let mut fleet = ShardedFleet::deploy(XpuSpec::a100(), SystemMode::CcAi, &weights, 4)
        .expect("sharded fleet deploys");
    assert!(fleet.quarantined_tenants().is_empty(), "fleet starts healthy");

    // All shards are golden-image replicas of one template, so the bound
    // tenant tag is identical on each. Trip containment on a shard that
    // is NOT the tenant's home: unrelenting corruption until the crypt
    // failures quarantine the tenant on that shard alone.
    let victim_shard = {
        // Pick any shard other than an arbitrary tenant's home so the
        // cross-shard property below is non-trivial for that tenant.
        let some_home = fleet.shard_of(0x10);
        (some_home + 1) % 4
    };
    {
        let system = fleet.shard_system_mut(victim_shard);
        system.inject_faults(FaultPlan::corrupt_only(0xBAD, 1024));
        assert!(
            system.run_workload(&weights, &prompt).is_err(),
            "unrelenting corruption must be unrecoverable"
        );
        system.clear_faults();
    }
    let contained = fleet.quarantined_tenants();
    assert!(!contained.is_empty(), "corruption must trip a quarantine");
    let tag = contained[0];
    assert_ne!(
        fleet.shard_of(tag),
        victim_shard,
        "test setup: quarantine must have tripped away from the home shard"
    );

    // Every shard honors the quarantine — including the healthy home
    // shard the tenant actually routes to.
    match fleet.serve(tag, &prompt) {
        Err(ServeError::Quarantined(t)) => assert_eq!(t, tag),
        Err(other) => panic!("expected a quarantine refusal, got: {other}"),
        Ok(_) => panic!("quarantined tenant was served by a healthy shard"),
    }
    // A different, unquarantined tenant still gets service.
    let other = contained.iter().max().unwrap() + 1;
    assert!(fleet.serve(other, &prompt).is_ok(), "healthy tenants keep being served");

    // The serving layer mirrors the SC-observed quarantine into
    // admission control: the tenant's queued work and all future
    // arrivals shed with the typed Quarantined reason.
    let tenants = vec![
        TenantSpec::new(tag, SimDuration::from_millis(20), 16, 32),
        TenantSpec::new(other, SimDuration::from_millis(20), 16, 32),
    ];
    let config = FleetConfig {
        seed: 0x5EC,
        shards: 4,
        max_batch: 16,
        admission_backlog: 32,
        rate_limiting: true,
        model: ccai_llm::LlmSpec::opt_1_3b(),
        device: XpuSpec::a100(),
        tenants,
    };
    let mut server = FleetServer::new(config);
    server.generate(50);
    server.sync_quarantine(&fleet.quarantined_tenants());
    server.generate(400);
    server.drain();

    let report = server.report();
    let bad = report.tenants.iter().find(|t| t.tenant == tag).unwrap();
    let good = report.tenants.iter().find(|t| t.tenant == other).unwrap();
    assert!(
        bad.shed_quarantined > 0,
        "quarantined tenant's arrivals must shed with the typed reason"
    );
    assert_eq!(
        bad.generated,
        bad.served + bad.shed_rate_limited + bad.shed_queue_full + bad.shed_quarantined,
        "every quarantined-tenant request must be accounted, never silently dropped"
    );
    assert_eq!(good.shed_quarantined, 0, "healthy tenant untouched by the quarantine");
    assert!(good.served > 0);
    assert!(
        server.telemetry().counter("serve.shed.quarantined") >= bad.shed_quarantined,
        "typed shed counter must be visible in telemetry"
    );
}
