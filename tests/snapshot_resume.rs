//! Differential snapshot/resume suite: a resumed system must be
//! indistinguishable from one that never stopped.
//!
//! For fixed seeds and three fault regimes — fault-free, datapath faults
//! and control-path faults — a workload is snapshotted at three quiesce
//! points (before any traffic, between the model-load and inference pump
//! rounds, and after completion), resumed into a fresh
//! [`ConfidentialSystem`], and driven to the end. The resumed run must
//! reproduce the uninterrupted baseline *bit-exactly*: the same inference
//! result, telemetry trace digest, xPU register file, device-memory
//! digest, SC filter digest and counters, and the same fault trace —
//! including faults the injector schedules after the resume point.

use ccai_core::sc::ScCounters;
use ccai_core::snapshot::snapshot_mid_task;
use ccai_core::{ConfidentialSystem, SystemMode};
use ccai_pcie::{FaultEvent, FaultPlan};
use ccai_tvm::RetryPolicy;
use ccai_xpu::{CommandProcessor, RegisterFile, XpuSpec};

const WEIGHTS_LEN: usize = 20_000;
const INPUT_LEN: usize = 6_000;

fn workload() -> (Vec<u8>, Vec<u8>) {
    let weights: Vec<u8> = (0..WEIGHTS_LEN).map(|i| (i * 131 % 251) as u8).collect();
    let input: Vec<u8> = (0..INPUT_LEN).map(|i| (i * 17 % 241) as u8).collect();
    (weights, input)
}

/// The three fault regimes the suite crosses with every snapshot point.
fn regimes() -> [(&'static str, Option<FaultPlan>); 3] {
    [
        ("fault_free", None),
        ("data_fault", Some(FaultPlan::corrupt_only(13, 24))),
        ("control_fault", Some(FaultPlan::drop_only(0xC0A1, 48).with_control_path())),
    ]
}

/// Where in the workload the snapshot is taken.
#[derive(Clone, Copy, PartialEq)]
enum SnapPoint {
    /// After build + fault arming, before any traffic.
    PreTraffic,
    /// Between the model-load and inference halves (the pump-round
    /// boundary `snapshot_mid_task` quiesces at).
    MidTask,
    /// After the workload completed.
    PostTask,
}

/// Everything observable about a finished run.
#[derive(Debug, PartialEq)]
struct Outcome {
    result: Vec<u8>,
    telemetry_digest: String,
    memory_digest: [u8; 32],
    registers: RegisterFile,
    filter_digest: String,
    filter_rules: (usize, usize),
    sc_counters: ScCounters,
    fault_trace: Vec<FaultEvent>,
}

fn observe(system: &ConfidentialSystem, result: Vec<u8>) -> Outcome {
    Outcome {
        result,
        telemetry_digest: system.telemetry().digest_hex(),
        memory_digest: system.xpu_memory_digest(),
        registers: system.xpu_register_snapshot(),
        filter_digest: system.sc_filter_digest(),
        filter_rules: system.sc_filter_rule_counts(),
        sc_counters: system.sc_counters(),
        fault_trace: system.fault_trace(),
    }
}

fn build(plan: Option<&FaultPlan>) -> ConfidentialSystem {
    let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    system
        .driver_mut()
        .set_retry_policy(RetryPolicy { max_attempts: 8, backoff_base: 2, ..Default::default() });
    if let Some(plan) = plan {
        system.inject_faults(*plan);
    }
    system
}

/// The uninterrupted reference run.
fn baseline(plan: Option<&FaultPlan>) -> Outcome {
    let (weights, input) = workload();
    let mut system = build(plan);
    system.load_model(&weights).expect("baseline model load");
    let result = system.run_inference(&input).expect("baseline inference");
    observe(&system, result)
}

/// Runs to `point`, snapshots, resumes into a fresh system, finishes the
/// workload there, and observes the *resumed* system.
fn resumed_at(plan: Option<&FaultPlan>, point: SnapPoint) -> Outcome {
    let (weights, input) = workload();
    let mut system = build(plan);
    let snap = match point {
        SnapPoint::PreTraffic => system.snapshot(),
        SnapPoint::MidTask => snapshot_mid_task(&mut system, &weights).expect("mid-task snapshot"),
        SnapPoint::PostTask => {
            system.load_model(&weights).expect("model load");
            system.run_inference(&input).expect("inference");
            system.snapshot()
        }
    };
    drop(system); // the original is gone; only the snapshot survives
    let mut resumed = ConfidentialSystem::resume(&snap).expect("resume");
    let result = match point {
        SnapPoint::PreTraffic => {
            resumed.load_model(&weights).expect("resumed model load");
            resumed.run_inference(&input).expect("resumed inference")
        }
        SnapPoint::MidTask => resumed.run_inference(&input).expect("resumed inference"),
        SnapPoint::PostTask => {
            // Nothing left to run — the snapshot already holds the
            // completed state (output landing zone included, which the
            // memory digest below covers), so the observable result is
            // the workload's known answer.
            CommandProcessor::surrogate_inference(&weights, &input).to_vec()
        }
    };
    observe(&resumed, result)
}

#[test]
fn resume_is_indistinguishable_from_an_uninterrupted_run() {
    for (name, plan) in regimes() {
        let reference = baseline(plan.as_ref());
        assert_eq!(
            reference.result,
            {
                let (weights, input) = workload();
                CommandProcessor::surrogate_inference(&weights, &input)
            },
            "{name}: baseline must be correct to begin with"
        );
        for (point_name, point) in [
            ("pre_traffic", SnapPoint::PreTraffic),
            ("mid_task", SnapPoint::MidTask),
            ("post_task", SnapPoint::PostTask),
        ] {
            let resumed = resumed_at(plan.as_ref(), point);
            assert_eq!(
                resumed, reference,
                "{name}/{point_name}: resumed run diverged from the uninterrupted baseline"
            );
        }
    }
}

#[test]
fn faulted_resume_still_exercises_the_injector() {
    // The guarantee is only interesting if faults actually fire on both
    // sides of the snapshot point.
    let plan = FaultPlan::corrupt_only(13, 24);
    let outcome = resumed_at(Some(&plan), SnapPoint::MidTask);
    assert!(
        !outcome.fault_trace.is_empty(),
        "data-fault regime must inject at least one fault"
    );
    let baseline = baseline(Some(&plan));
    assert_eq!(outcome.fault_trace, baseline.fault_trace);
}

#[test]
fn snapshot_itself_leaves_no_trace() {
    // Taking a snapshot must not perturb the system it observes: the
    // original finishes with the same digest whether or not it was
    // snapshotted along the way.
    let (weights, input) = workload();
    let reference = baseline(None);
    let mut system = build(None);
    system.load_model(&weights).expect("model load");
    let _snap = system.snapshot();
    let _snap_again = system.snapshot();
    let result = system.run_inference(&input).expect("inference");
    assert_eq!(observe(&system, result), reference);
}

#[test]
fn trace_digests_replay_across_suite_runs() {
    // CI hook, mirroring `telemetry_trace`: dump one digest per
    // (regime × snapshot point) so two consecutive suite runs can be
    // diffed without parsing test output.
    let mut dump = String::new();
    for (name, plan) in regimes() {
        let reference = baseline(plan.as_ref());
        dump.push_str(&format!("{name}_baseline={}\n", reference.telemetry_digest));
        for (point_name, point) in [
            ("pre_traffic", SnapPoint::PreTraffic),
            ("mid_task", SnapPoint::MidTask),
            ("post_task", SnapPoint::PostTask),
        ] {
            let resumed = resumed_at(plan.as_ref(), point);
            assert_eq!(resumed.telemetry_digest, reference.telemetry_digest);
            dump.push_str(&format!("{name}_{point_name}={}\n", resumed.telemetry_digest));
        }
    }
    if let Ok(path) = std::env::var("CCAI_TRACE_DIGEST_OUT") {
        std::fs::write(&path, dump).expect("write digest dump");
    }
}

/// The fleet-serving regime: a whole multi-tenant fleet — arrival RNG,
/// token buckets, admission-pending queues, batch queues, shard clocks
/// and telemetry — snapshotted mid-flight with requests queued but not
/// yet admitted, resumed, and driven to the end. The resumed fleet must
/// reproduce the uninterrupted run's trace digest and report
/// bit-exactly.
#[test]
fn fleet_serving_resume_matches_the_uninterrupted_run() {
    use ccai_llm::serve::{FleetConfig, FleetServer};

    const TOTAL: u64 = 3_000;
    const SNAP_AT: u64 = 1_100;
    let config = FleetConfig::standard(0xF1E7);

    let mut straight = FleetServer::new(config.clone());
    straight.generate(TOTAL);
    straight.drain();

    let mut first = FleetServer::new(config.clone());
    first.generate(SNAP_AT);
    assert!(
        first.backlog() > 0,
        "snapshot point must have queued-but-unadmitted requests to be interesting"
    );
    let image = first.snapshot();
    drop(first);
    let mut resumed = FleetServer::resume(config, &image).expect("fleet resumes");
    resumed.generate(TOTAL);
    resumed.drain();

    assert_eq!(
        straight.telemetry().digest_hex(),
        resumed.telemetry().digest_hex(),
        "resumed fleet diverged from the uninterrupted run"
    );
    assert_eq!(straight.report().to_json(), resumed.report().to_json());

    // Sibling dump file: tests run in parallel, so appending to the main
    // CCAI_TRACE_DIGEST_OUT file would race the other dump test.
    if let Ok(path) = std::env::var("CCAI_TRACE_DIGEST_OUT") {
        let dump = format!("fleet_serving={}\n", resumed.telemetry().digest_hex());
        std::fs::write(format!("{path}.fleet"), dump).expect("write digest dump");
    }
}
