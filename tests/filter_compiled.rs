//! Differential property suite for the precompiled filter matcher.
//!
//! The Packet Filter classifies through a dispatch tree compiled from the
//! L1/L2 tables; the pre-refactor row-by-row scan survives as
//! `classify_scan` (the `scan-oracle` feature, mirroring
//! `ccai_crypto::scalar`). These properties pit the two paths against
//! each other on randomized rule tables with overlapping masks, dead
//! rows, and catch-alls — first-hit insertion-order semantics must be
//! preserved bit-for-bit, stats accounting included — and prove the
//! matcher is rebuilt on every install path (`push_l1` / `push_l2` /
//! `replace_tables`), never left stale.

use ccai_core::filter::{
    FieldMask, L1Decision, L1Rule, L2Rule, MatchFields, PacketFilter, SecurityAction,
};
use ccai_pcie::{Bdf, Tlp, TlpType};
use proptest::prelude::*;
use std::ops::Range;

/// BDFs from a deliberately tiny pool so rules and probes collide often.
fn arb_bdf() -> impl Strategy<Value = Bdf> {
    (0u8..3, 0u8..3, 0u8..2).prop_map(|(b, d, f)| Bdf::new(b, d, f))
}

/// Packet types a header constructor can actually produce.
fn arb_tlp_type() -> impl Strategy<Value = TlpType> {
    prop_oneof![
        Just(TlpType::MemRead),
        Just(TlpType::MemWrite),
        Just(TlpType::CfgRead),
        Just(TlpType::CfgWrite),
        Just(TlpType::CompletionData),
        Just(TlpType::Message),
    ]
}

/// Small, heavily-overlapping address ranges.
fn arb_range() -> impl Strategy<Value = Range<u64>> {
    (0u64..16, 1u64..16).prop_map(|(start, len)| (start * 0x400)..((start + len) * 0x400))
}

/// Every mask combination, including masks whose fields turn out to be
/// `None` (dead rules the compiler must drop, not mismatch).
fn arb_mask() -> impl Strategy<Value = FieldMask> {
    (any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>()).prop_map(
        |(pkt_type, requester, completer, address, msg_code)| FieldMask {
            pkt_type,
            requester,
            completer,
            address,
            msg_code,
        },
    )
}

fn arb_fields() -> impl Strategy<Value = MatchFields> {
    (
        prop_oneof![Just(None), arb_tlp_type().prop_map(Some)],
        prop_oneof![Just(None), arb_bdf().prop_map(Some)],
        prop_oneof![Just(None), arb_bdf().prop_map(Some)],
        prop_oneof![Just(None), arb_range().prop_map(Some)],
        prop_oneof![Just(None), (0u8..4).prop_map(|c| Some(0x20 + c))],
    )
        .prop_map(|(pkt_type, requester, completer, address, msg_code)| MatchFields {
            pkt_type,
            requester,
            completer,
            address,
            msg_code,
        })
}

fn arb_l1_rule() -> impl Strategy<Value = L1Rule> {
    (arb_mask(), arb_fields(), any::<bool>()).prop_map(|(mask, fields, admit)| L1Rule {
        mask,
        fields,
        decision: if admit { L1Decision::ToL2 } else { L1Decision::ExecuteA1 },
    })
}

fn arb_l2_rule() -> impl Strategy<Value = L2Rule> {
    (arb_mask(), arb_fields(), 0u8..3).prop_map(|(mask, fields, action)| L2Rule {
        mask,
        fields,
        action: match action {
            0 => SecurityAction::CryptProtect,
            1 => SecurityAction::WriteProtect,
            _ => SecurityAction::PassThrough,
        },
    })
}

/// Probe headers drawn from the same small BDF/address pools as the
/// rules, so most probes exercise real (partial) matches.
fn arb_probe() -> impl Strategy<Value = Tlp> {
    prop_oneof![
        (arb_bdf(), 0u64..0x8000).prop_map(|(bdf, addr)| Tlp::memory_write(bdf, addr, vec![1])),
        (arb_bdf(), 0u64..0x8000, any::<u8>())
            .prop_map(|(bdf, addr, tag)| Tlp::memory_read(bdf, addr, 4, tag)),
        (arb_bdf(), arb_bdf()).prop_map(|(req, cpl)| Tlp::config_read(req, cpl, 0, 0)),
        (arb_bdf(), 0u8..6).prop_map(|(bdf, c)| Tlp::message(bdf, 0x20 + c)),
        (arb_bdf(), arb_bdf(), any::<u8>())
            .prop_map(|(cpl, req, tag)| Tlp::completion_with_data(cpl, req, tag, vec![0; 4])),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline differential: for any table and any probe stream,
    /// the compiled tree and the linear scan agree on every action AND
    /// on the accumulated statistics.
    #[test]
    fn compiled_matcher_equals_linear_scan(
        l1 in proptest::collection::vec(arb_l1_rule(), 0..12),
        l2 in proptest::collection::vec(arb_l2_rule(), 0..16),
        probes in proptest::collection::vec(arb_probe(), 1..48),
    ) {
        let mut fast = PacketFilter::new();
        fast.replace_tables(l1, l2);
        let mut oracle = fast.clone();
        for tlp in &probes {
            prop_assert_eq!(
                fast.classify(tlp.header()),
                oracle.classify_scan(tlp.header()),
                "paths diverge on {}",
                tlp
            );
        }
        prop_assert_eq!(fast.stats(), oracle.stats(), "stats accounting diverges");
    }

    /// First-hit insertion order: prepending a catch-all must shadow
    /// every later rule on both paths identically.
    #[test]
    fn catch_all_shadows_later_rules_on_both_paths(
        l1 in proptest::collection::vec(arb_l1_rule(), 1..8),
        l2 in proptest::collection::vec(arb_l2_rule(), 1..8),
        probes in proptest::collection::vec(arb_probe(), 1..24),
    ) {
        let mut l1_shadowed = vec![L1Rule {
            mask: FieldMask::none(),
            fields: MatchFields::any(),
            decision: L1Decision::ToL2,
        }];
        l1_shadowed.extend(l1);
        let mut l2_shadowed = vec![L2Rule {
            mask: FieldMask::none(),
            fields: MatchFields::any(),
            action: SecurityAction::WriteProtect,
        }];
        l2_shadowed.extend(l2);
        let mut fast = PacketFilter::new();
        fast.replace_tables(l1_shadowed, l2_shadowed);
        let mut oracle = fast.clone();
        for tlp in &probes {
            // Index-0 wildcards win at both levels, so everything is
            // admitted and write-protected — on both paths.
            prop_assert_eq!(fast.classify(tlp.header()), SecurityAction::WriteProtect);
            prop_assert_eq!(oracle.classify_scan(tlp.header()), SecurityAction::WriteProtect);
        }
    }

    /// Rebuild-on-install invariant: after EVERY incremental `push_l1` /
    /// `push_l2`, the compiled tree already reflects the new row. A
    /// matcher compiled once and left stale fails this immediately.
    #[test]
    fn matcher_recompiles_on_every_install(
        l1 in proptest::collection::vec(arb_l1_rule(), 1..6),
        l2 in proptest::collection::vec(arb_l2_rule(), 1..6),
        probes in proptest::collection::vec(arb_probe(), 1..12),
    ) {
        let mut fast = PacketFilter::new();
        let mut oracle = PacketFilter::new();
        // Interleave L1 and L2 installs the way the MMIO config path
        // does, checking equivalence after each step.
        let steps = l1.len().max(l2.len());
        for i in 0..steps {
            if let Some(rule) = l1.get(i) {
                fast.push_l1(rule.clone());
                oracle.push_l1(rule.clone());
            }
            if let Some(rule) = l2.get(i) {
                fast.push_l2(rule.clone());
                oracle.push_l2(rule.clone());
            }
            for tlp in &probes {
                prop_assert_eq!(
                    fast.classify(tlp.header()),
                    oracle.classify_scan(tlp.header()),
                    "stale matcher after install step {}: {}",
                    i,
                    tlp
                );
            }
        }
        prop_assert_eq!(fast.stats(), oracle.stats());
    }

    /// `replace_tables` (the dynamic-configuration path) recompiles: a
    /// filter whose tables were swapped wholesale classifies exactly
    /// like one built by incremental installs of the same rows.
    #[test]
    fn replace_tables_equals_incremental_installs(
        old_l1 in proptest::collection::vec(arb_l1_rule(), 0..6),
        old_l2 in proptest::collection::vec(arb_l2_rule(), 0..6),
        new_l1 in proptest::collection::vec(arb_l1_rule(), 0..8),
        new_l2 in proptest::collection::vec(arb_l2_rule(), 0..8),
        probes in proptest::collection::vec(arb_probe(), 1..24),
    ) {
        let mut swapped = PacketFilter::new();
        swapped.replace_tables(old_l1, old_l2);
        swapped.replace_tables(new_l1.clone(), new_l2.clone());
        let mut incremental = PacketFilter::new();
        for rule in new_l1 {
            incremental.push_l1(rule);
        }
        for rule in new_l2 {
            incremental.push_l2(rule);
        }
        for tlp in &probes {
            prop_assert_eq!(
                swapped.classify(tlp.header()),
                incremental.classify(tlp.header()),
                "replace_tables left a stale tree: {}",
                tlp
            );
        }
    }

    /// Dead rows — masks selecting fields the rule never provides — are
    /// unmatchable on the scan, so the compiler drops them; interleaving
    /// them anywhere in the table must not perturb either path.
    #[test]
    fn dead_rules_never_change_classification(
        l1 in proptest::collection::vec(arb_l1_rule(), 1..6),
        l2 in proptest::collection::vec(arb_l2_rule(), 1..6),
        probes in proptest::collection::vec(arb_probe(), 1..24),
        dead_slot in any::<prop::sample::Index>(),
    ) {
        let dead_l1 = L1Rule {
            // Requester masked but no requester given: matches nothing.
            mask: FieldMask { requester: true, ..FieldMask::none() },
            fields: MatchFields::any(),
            decision: L1Decision::ExecuteA1,
        };
        let dead_l2 = L2Rule {
            mask: FieldMask { address: true, ..FieldMask::none() },
            fields: MatchFields::any(),
            action: SecurityAction::PassThrough,
        };
        let mut with_dead_l1 = l1.clone();
        with_dead_l1.insert(dead_slot.index(l1.len() + 1), dead_l1);
        let mut with_dead_l2 = l2.clone();
        with_dead_l2.insert(dead_slot.index(l2.len() + 1), dead_l2);

        let mut plain = PacketFilter::new();
        plain.replace_tables(l1, l2);
        let mut with_dead = PacketFilter::new();
        with_dead.replace_tables(with_dead_l1, with_dead_l2);
        let mut with_dead_oracle = with_dead.clone();
        for tlp in &probes {
            let expected = plain.classify(tlp.header());
            prop_assert_eq!(with_dead.classify(tlp.header()), expected, "{}", tlp);
            prop_assert_eq!(with_dead_oracle.classify_scan(tlp.header()), expected, "{}", tlp);
        }
    }
}
