//! The Fig. 5 Packet Filter workflow, driven through the real fabric:
//! encrypted policy installation via the configuration space, L1 masked
//! prefiltering, L2 action selection, and dynamic policy updates.

use ccai_core::filter::{L1Rule, L2Rule, PacketFilter, PolicyBlob, SecurityAction};
use ccai_core::sc::{regs, status_bits, PcieSc, ScConfig};
use ccai_core::system::{layout, ConfidentialSystem, SystemMode};
use ccai_crypto::{hkdf, Key};
use ccai_pcie::{Bdf, Interposer, Tlp, TlpType};

fn tvm() -> Bdf {
    Bdf::new(0, 2, 0)
}

fn xpu() -> Bdf {
    Bdf::new(0x17, 0, 0)
}

fn fresh_sc(master: [u8; 32]) -> PcieSc {
    PcieSc::new(
        ScConfig {
            sc_bdf: Bdf::new(0x16, 0, 0),
            region_base: 0x7F00_0000,
            tvm_bdf: tvm(),
            xpu_bdf: xpu(),
            mmio_integrity: false,
            metadata_batching: true,
        },
        master,
    )
}

fn install_policy(sc: &mut PcieSc, master: &[u8; 32], l1: Vec<L1Rule>, l2: Vec<L2Rule>) {
    let key = Key::from_bytes(&hkdf(b"ccai-config-key", master, b"policy", 16)).unwrap();
    let blob = PolicyBlob::seal(&l1, &l2, &key, [7; 12]).to_bytes();
    let base = 0x7F00_0000u64;
    for (i, chunk) in blob.chunks(1024).enumerate() {
        sc.on_downstream(Tlp::memory_write(tvm(), base + (i * 1024) as u64, chunk.to_vec()));
    }
    sc.on_downstream(Tlp::memory_write(
        tvm(),
        base + regs::POLICY_LEN,
        (blob.len() as u64).to_le_bytes().to_vec(),
    ));
    sc.on_downstream(Tlp::memory_write(tvm(), base + regs::POLICY_APPLY, vec![1]));
}

fn read_status(sc: &mut PcieSc) -> u64 {
    let outcome =
        sc.on_downstream(Tlp::memory_read(tvm(), 0x7F00_0000 + regs::STATUS, 8, 0x77));
    let mut bytes = [0u8; 8];
    bytes.copy_from_slice(outcome.reply[0].payload());
    u64::from_le_bytes(bytes)
}

#[test]
fn fig5_workflow_over_the_control_path() {
    let master = [0x21u8; 32];
    let mut sc = fresh_sc(master);

    // Fig. 5 ①: L1 admits TVM memory requests; ②: L2 distinguishes the
    // ccAI-HW command window (A2 would be internal), the xPU control
    // window (A3) and the data bounce window.
    let l1 = vec![
        L1Rule::admit(TlpType::MemWrite, tvm()),
        L1Rule::admit(TlpType::MemRead, tvm()),
        L1Rule::default_deny(),
    ];
    let l2 = vec![
        L2Rule::for_range(TlpType::MemWrite, tvm(), 0x8000..0x9000, SecurityAction::WriteProtect),
        L2Rule::for_range(TlpType::MemRead, tvm(), 0x1000..0x5000, SecurityAction::PassThrough),
    ];
    install_policy(&mut sc, &master, l1, l2);
    assert_eq!(read_status(&mut sc) & status_bits::POLICY_OK, status_bits::POLICY_OK);

    // Authorized read in the pass-through window flows (it reaches no
    // device here, but it is not blocked).
    let before = sc.counters().packets_blocked;
    sc.on_downstream(Tlp::memory_read(tvm(), 0x1000, 64, 1));
    assert_eq!(sc.counters().packets_blocked, before);

    // Unauthorized requester dies at L1.
    sc.on_downstream(Tlp::memory_write(Bdf::new(5, 5, 0), 0x1000, vec![1]));
    assert_eq!(sc.counters().packets_blocked, before + 1);

    // An admitted-but-unclassified address dies at L2.
    sc.on_downstream(Tlp::memory_write(tvm(), 0xF000, vec![1]));
    assert_eq!(sc.counters().packets_blocked, before + 2);
    assert_eq!(sc.filter_stats().l1_blocked, 1);
    assert_eq!(sc.filter_stats().l2_blocked, 1);
}

#[test]
fn dynamic_policy_update_swaps_behavior() {
    let master = [0x22u8; 32];
    let mut sc = fresh_sc(master);
    install_policy(
        &mut sc,
        &master,
        vec![L1Rule::admit(TlpType::MemRead, tvm())],
        vec![L2Rule::for_range(TlpType::MemRead, tvm(), 0..0x1000, SecurityAction::PassThrough)],
    );
    let before = sc.counters().packets_blocked;
    sc.on_downstream(Tlp::memory_read(tvm(), 0x100, 4, 0));
    assert_eq!(sc.counters().packets_blocked, before, "allowed under policy v1");

    // Update: revoke the read window.
    install_policy(
        &mut sc,
        &master,
        vec![L1Rule::admit(TlpType::MemRead, tvm())],
        vec![],
    );
    sc.on_downstream(Tlp::memory_read(tvm(), 0x100, 4, 0));
    assert_eq!(sc.counters().packets_blocked, before + 1, "blocked under policy v2");
}

#[test]
fn malicious_policy_injection_is_rejected() {
    let master = [0x23u8; 32];
    let mut sc = fresh_sc(master);
    // The §4.1 attack: inject a configuration sealed under the WRONG key.
    let attacker_key = Key::Aes128([0xEE; 16]);
    let evil = PolicyBlob::seal(
        &[L1Rule::default_deny()],
        &[],
        &attacker_key,
        [9; 12],
    )
    .to_bytes();
    let base = 0x7F00_0000u64;
    sc.on_downstream(Tlp::memory_write(tvm(), base, evil.clone()));
    sc.on_downstream(Tlp::memory_write(
        tvm(),
        base + regs::POLICY_LEN,
        (evil.len() as u64).to_le_bytes().to_vec(),
    ));
    sc.on_downstream(Tlp::memory_write(tvm(), base + regs::POLICY_APPLY, vec![1]));
    assert_eq!(read_status(&mut sc) & status_bits::POLICY_ERR, status_bits::POLICY_ERR);
}

#[test]
fn filter_stats_in_the_full_system_account_for_all_traffic() {
    let mut system = ConfidentialSystem::build(ccai_xpu::XpuSpec::a100(), SystemMode::CcAi);
    system.run_workload(&vec![1u8; 50_000], &vec![2u8; 6_000]).unwrap();
    let sc = system.sc().unwrap();
    let stats = sc.filter_stats();
    assert_eq!(stats.blocked(), 0, "clean run blocks nothing");
    assert!(stats.write_protected > 10, "driver MMIO writes classified A3");
    assert!(stats.passed > 10, "reads/completions classified A4");
    // A2 work happened on the data path (counted by the engine, since
    // CplD decryption bypasses table classification by design).
    assert!(sc.counters().chunks_decrypted > 10);
    let _ = layout::SC_REGION; // layout is part of the public API surface
}

#[test]
fn classification_is_stable_over_many_packets() {
    // Soak: a mixed stream through a standalone filter keeps counting
    // consistently (no state corruption).
    let mut filter = PacketFilter::new();
    filter.push_l1(L1Rule::admit(TlpType::MemWrite, tvm()));
    filter.push_l2(L2Rule::for_range(
        TlpType::MemWrite,
        tvm(),
        0x1000..0x2000,
        SecurityAction::CryptProtect,
    ));
    let inside = Tlp::memory_write(tvm(), 0x1800, vec![0; 8]);
    let outside = Tlp::memory_write(tvm(), 0x3000, vec![0; 8]);
    let rogue = Tlp::memory_write(Bdf::new(1, 1, 1), 0x1800, vec![0; 8]);
    for _ in 0..1000 {
        assert_eq!(filter.classify(inside.header()), SecurityAction::CryptProtect);
        assert_eq!(filter.classify(outside.header()), SecurityAction::Disallow);
        assert_eq!(filter.classify(rogue.header()), SecurityAction::Disallow);
    }
    let stats = filter.stats();
    assert_eq!(stats.crypt_protected, 1000);
    assert_eq!(stats.l2_blocked, 1000);
    assert_eq!(stats.l1_blocked, 1000);
    assert_eq!(stats.total(), 3000);
}
