//! Differential fault-injection and recovery tests for the PCIe-SC
//! datapath.
//!
//! A seeded [`FaultPlan`] drives deterministic TLP corruption, drops,
//! duplication, reordering, link flaps and delayed completions on the
//! upstream link segment. The driver's retry machinery, the Adaptor's
//! rekey-on-failure hook and the SC's quarantine state machine must
//! together make every recoverable fault class invisible: the same seed
//! replays the identical fault trace, and the xPU's post-run memory is
//! byte-identical to a fault-free run.

use ccai_core::sc::ScAlert;
use ccai_core::system::layout;
use ccai_core::{ConfidentialSystem, SystemMode};
use ccai_pcie::{Bdf, CplStatus, FaultEvent, FaultPlan, Tlp, TlpType, WireAttack};
use ccai_tvm::RetryPolicy;
use ccai_xpu::{CommandProcessor, XpuSpec};

const WEIGHTS_LEN: usize = 20_000;
const INPUT_LEN: usize = 6_000;

fn workload() -> (Vec<u8>, Vec<u8>) {
    let weights: Vec<u8> = (0..WEIGHTS_LEN).map(|i| (i * 131 % 251) as u8).collect();
    let input: Vec<u8> = (0..INPUT_LEN).map(|i| (i * 17 % 241) as u8).collect();
    (weights, input)
}

struct RunOutcome {
    digest: [u8; 32],
    result: Vec<u8>,
    retries: u64,
    trace: Vec<FaultEvent>,
}

/// Builds a fresh system, arms `plan` (if any) and runs one workload.
fn run_with_plan(plan: Option<FaultPlan>) -> RunOutcome {
    let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    system
        .driver_mut()
        .set_retry_policy(RetryPolicy { max_attempts: 6, backoff_base: 2, ..Default::default() });
    if let Some(plan) = plan {
        system.inject_faults(plan);
    }
    let (weights, input) = workload();
    let result = system
        .run_workload(&weights, &input)
        .unwrap_or_else(|e| panic!("plan {plan:?}: workload failed: {e}"));
    RunOutcome {
        digest: system.xpu_memory_digest(),
        result,
        retries: system.driver().dma_retries(),
        trace: system.fault_trace(),
    }
}

#[test]
fn same_seed_replays_identical_trace_and_memory() {
    let plan = FaultPlan::heavy(0xCCA1_5EED);
    let a = run_with_plan(Some(plan));
    let b = run_with_plan(Some(plan));
    assert!(!a.trace.is_empty(), "heavy plan must inject something");
    assert_eq!(a.trace, b.trace, "same seed must replay the identical fault trace");
    assert_eq!(a.digest, b.digest, "same seed must leave identical xPU memory");
    assert_eq!(a.result, b.result);
    assert_eq!(a.retries, b.retries, "even the retry count must replay");
}

#[test]
fn recoverable_fault_classes_are_invisible_in_device_memory() {
    let baseline = run_with_plan(None);
    let (weights, input) = workload();
    assert_eq!(
        baseline.result,
        CommandProcessor::surrogate_inference(&weights, &input),
        "fault-free baseline must be correct to begin with"
    );
    assert_eq!(baseline.retries, 0, "fault-free run needs no retries");

    let plans = [
        ("light", FaultPlan::light(7)),
        ("drop", FaultPlan::drop_only(11, 16)),
        ("corrupt", FaultPlan::corrupt_only(13, 24)),
        ("dup+reorder", FaultPlan::duplicate_reorder(17, 64)),
        ("delay", FaultPlan::delay_only(19, 200)),
        ("flap", FaultPlan::flap_only(23, 8, 3)),
    ];
    for (name, plan) in plans {
        let faulted = run_with_plan(Some(plan));
        assert_eq!(
            faulted.result, baseline.result,
            "{name}: inference result must match fault-free run"
        );
        assert_eq!(
            faulted.digest, baseline.digest,
            "{name}: xPU memory must be byte-identical to fault-free run"
        );
        // 3 transfers per workload × (max_attempts - 1) retries each.
        assert!(
            faulted.retries <= 15,
            "{name}: retry count {} exceeds the policy bound",
            faulted.retries
        );
    }
}

#[test]
fn lossy_faults_exercise_the_retry_and_rekey_path() {
    // High-but-recoverable corruption: chosen so at least one transfer
    // fails and is retried under a rotated key.
    let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    system
        .driver_mut()
        .set_retry_policy(RetryPolicy { max_attempts: 8, backoff_base: 2, ..Default::default() });
    system.inject_faults(FaultPlan::corrupt_only(5, 96));
    let (weights, input) = workload();
    let result = system.run_workload(&weights, &input).expect("recoverable plan");
    assert_eq!(result, CommandProcessor::surrogate_inference(&weights, &input));

    assert!(system.driver().dma_retries() > 0, "corruption must force retries");
    let counters = system.adaptor_counters();
    assert!(counters.transfer_retries > 0, "adaptor must see the failed transfers");
    assert!(
        counters.rekeys > 0,
        "every retried transfer must retire its stream key (no IV reuse)"
    );
    let sc = system.sc().expect("protected mode");
    assert!(
        sc.alerts()
            .iter()
            .any(|a| matches!(a, ScAlert::CryptFailure { .. })),
        "SC must have recorded the corrupted chunks"
    );
    assert!(
        !system.fault_trace().is_empty(),
        "the injector must have recorded its corruptions"
    );
}

#[test]
fn clearing_faults_restores_a_clean_channel() {
    let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    system
        .driver_mut()
        .set_retry_policy(RetryPolicy { max_attempts: 8, backoff_base: 2, ..Default::default() });
    system.inject_faults(FaultPlan::light(3));
    let (weights, input) = workload();
    system.run_workload(&weights, &input).expect("light plan is recoverable");

    let injector = system.clear_faults().expect("an injector was armed");
    assert_eq!(injector.plan().seed, 3);
    let trace_len = injector.trace().len();

    // Disarmed: the next run is fault-free and the trace stays frozen.
    let result = system.run_workload(&weights, &input).expect("clean channel");
    assert_eq!(result, CommandProcessor::surrogate_inference(&weights, &input));
    assert!(system.fault_trace().is_empty(), "no injector, no new trace");
    let _ = trace_len;
}

#[test]
fn unrelenting_corruption_quarantines_the_channel() {
    let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    // Corrupt every data-bearing packet: the channel is unrecoverable and
    // must be demoted to A1-deny after the failure threshold.
    system.inject_faults(FaultPlan::corrupt_only(0xBAD, 1024));
    let (weights, input) = workload();
    let outcome = system.run_workload(&weights, &input);
    assert!(outcome.is_err(), "a fully corrupted channel cannot complete a workload");

    let xpu_bdf = Bdf::new(layout::XPU_BDF.0, layout::XPU_BDF.1, layout::XPU_BDF.2);
    let sc = system.sc().expect("protected mode");
    assert!(sc.is_quarantined(xpu_bdf), "threshold failures must quarantine");
    assert!(
        sc.alerts()
            .iter()
            .any(|a| matches!(a, ScAlert::ChannelQuarantined { .. })),
        "quarantine must be recorded as an alert"
    );

    // Remove the injector entirely: the denial below is the SC's doing,
    // not the fault plan's.
    system.clear_faults();
    let blocked_before = system.sc_counters().packets_blocked;
    let tvm_bdf = system.tvm_bdf();
    let probe = Tlp::memory_read(tvm_bdf, layout::XPU_BAR_BASE, 8, 0x7A);
    let replies = system.fabric_mut().host_request(probe);
    assert_eq!(
        replies.first().and_then(|r| r.header().cpl_status()),
        Some(CplStatus::UnsupportedRequest),
        "a quarantined channel answers reads with UR"
    );
    assert!(
        system.sc_counters().packets_blocked > blocked_before,
        "the probe must be counted as blocked"
    );
}

/// Deletes the first large ciphertext completion on its way back to the
/// device — a cleanly *lost* packet, not a corrupted one.
#[derive(Debug)]
struct OneShotCompletionDeleter {
    dropped: bool,
}
impl WireAttack for OneShotCompletionDeleter {
    fn mangle(&mut self, tlp: Tlp, downstream: bool) -> Option<Tlp> {
        if downstream
            && tlp.header().tlp_type() == TlpType::CompletionData
            && tlp.payload().len() >= 4096
            && !self.dropped
        {
            self.dropped = true;
            return None;
        }
        Some(tlp)
    }
}

#[test]
fn chunk_refetch_moves_fewer_bytes_than_full_restaging() {
    // The same single mid-transfer loss, recovered two ways. With the
    // engine's chunk-granular re-fetch armed it re-reads only the lost
    // chunk; with the legacy behavior the stall surfaces to the driver,
    // which quiesces and re-stages the whole transfer. Both converge to
    // the correct result — but re-fetch must move strictly fewer bytes.
    let (weights, input) = workload();
    let expected = CommandProcessor::surrogate_inference(&weights, &input);

    let mut refetching = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    refetching.set_dma_refetch_limit(8);
    refetching
        .fabric_mut()
        .set_wire_attack(Box::new(OneShotCompletionDeleter { dropped: false }));
    let result = refetching.run_workload(&weights, &input).expect("re-fetch recovers the loss");
    assert_eq!(result, expected);
    assert!(refetching.dma_refetches() > 0, "the lost chunk must be re-fetched");
    assert_eq!(
        refetching.driver().dma_retries(),
        0,
        "device-side recovery must spare the driver a full re-staging retry"
    );

    let mut restaging = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    restaging
        .fabric_mut()
        .set_wire_attack(Box::new(OneShotCompletionDeleter { dropped: false }));
    let result = restaging.run_workload(&weights, &input).expect("driver retry recovers the loss");
    assert_eq!(result, expected);
    assert_eq!(restaging.dma_refetches(), 0, "re-fetch is off by default");
    assert!(restaging.driver().dma_retries() > 0, "recovery went through full re-staging");

    assert!(
        refetching.dma_read_bytes_requested() < restaging.dma_read_bytes_requested(),
        "chunk-granular recovery must request strictly fewer bytes ({} vs {})",
        refetching.dma_read_bytes_requested(),
        restaging.dma_read_bytes_requested(),
    );
}

#[test]
fn quarantine_spares_healthy_runs() {
    // The recoverable plans above never trip the quarantine threshold:
    // every successful chunk resets the consecutive-failure count.
    let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    system
        .driver_mut()
        .set_retry_policy(RetryPolicy { max_attempts: 8, backoff_base: 2, ..Default::default() });
    system.inject_faults(FaultPlan::corrupt_only(5, 96));
    let (weights, input) = workload();
    system.run_workload(&weights, &input).expect("recoverable");
    let xpu_bdf = Bdf::new(layout::XPU_BDF.0, layout::XPU_BDF.1, layout::XPU_BDF.2);
    assert!(!system.sc().expect("protected").is_quarantined(xpu_bdf));
}
