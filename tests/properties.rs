//! Property-based tests over the core data structures and invariants:
//! TLP codec round-trips, AEAD round-trips and tamper detection, policy
//! blob round-trips, filter monotonicity, device-memory consistency, and
//! bignum algebra.

use ccai_core::filter::{L1Rule, L2Rule, PacketFilter, PolicyBlob, SecurityAction};
use ccai_crypto::bignum::BigUint;
use ccai_crypto::{AesGcm, Key};
use ccai_pcie::{Bdf, Tlp, TlpType};
use ccai_xpu::DeviceMemory;
use proptest::prelude::*;

fn arb_bdf() -> impl Strategy<Value = Bdf> {
    (any::<u8>(), 0u8..32, 0u8..8).prop_map(|(b, d, f)| Bdf::new(b, d, f))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tlp_memory_write_round_trips(
        bdf in arb_bdf(),
        addr in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 1..2048),
    ) {
        let tlp = Tlp::memory_write(bdf, addr, payload);
        let decoded = Tlp::decode(&tlp.encode()).expect("decodes");
        prop_assert_eq!(decoded, tlp);
    }

    #[test]
    fn tlp_memory_read_round_trips(
        bdf in arb_bdf(),
        addr in any::<u64>(),
        len in 1u32..4096,
        tag in any::<u8>(),
    ) {
        let tlp = Tlp::memory_read(bdf, addr, len, tag);
        let decoded = Tlp::decode(&tlp.encode()).expect("decodes");
        prop_assert_eq!(decoded.header().payload_len(), len);
        prop_assert_eq!(decoded, tlp);
    }

    #[test]
    fn tlp_completion_round_trips(
        completer in arb_bdf(),
        requester in arb_bdf(),
        tag in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 1..512),
    ) {
        let tlp = Tlp::completion_with_data(completer, requester, tag, payload);
        prop_assert_eq!(Tlp::decode(&tlp.encode()).expect("decodes"), tlp);
    }

    #[test]
    fn tlp_decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Tlp::decode(&bytes); // must not panic
    }

    #[test]
    fn gcm_round_trips_any_payload(
        key in any::<[u8; 16]>(),
        nonce in any::<[u8; 12]>(),
        plaintext in proptest::collection::vec(any::<u8>(), 0..4096),
        aad in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let gcm = AesGcm::new(&Key::Aes128(key));
        let sealed = gcm.seal(&nonce, &plaintext, &aad);
        prop_assert_eq!(sealed.len(), plaintext.len() + 16);
        prop_assert_eq!(gcm.open(&nonce, &sealed, &aad).expect("authentic"), plaintext);
    }

    #[test]
    fn gcm_rejects_any_single_byte_corruption(
        key in any::<[u8; 16]>(),
        nonce in any::<[u8; 12]>(),
        plaintext in proptest::collection::vec(any::<u8>(), 1..512),
        corrupt_at in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let gcm = AesGcm::new(&Key::Aes128(key));
        let mut sealed = gcm.seal(&nonce, &plaintext, b"");
        let idx = corrupt_at.index(sealed.len());
        sealed[idx] ^= xor;
        prop_assert!(gcm.open(&nonce, &sealed, b"").is_err());
    }

    #[test]
    fn policy_blob_round_trips(
        requesters in proptest::collection::vec(arb_bdf(), 1..8),
        starts in proptest::collection::vec(0u64..u64::MAX / 2, 1..8),
    ) {
        let l1: Vec<L1Rule> = requesters
            .iter()
            .map(|&r| L1Rule::admit(TlpType::MemWrite, r))
            .chain(std::iter::once(L1Rule::default_deny()))
            .collect();
        let l2: Vec<L2Rule> = requesters
            .iter()
            .zip(starts.iter())
            .map(|(&r, &s)| {
                L2Rule::for_range(TlpType::MemWrite, r, s..s + 0x1000, SecurityAction::CryptProtect)
            })
            .collect();
        let key = Key::Aes128([0x5C; 16]);
        let blob = PolicyBlob::seal(&l1, &l2, &key, [3; 12]);
        let (l1_back, l2_back) = blob.unseal(&key).expect("round trip");
        prop_assert_eq!(l1_back, l1);
        prop_assert_eq!(l2_back, l2);
    }

    #[test]
    fn filter_default_deny_is_total(
        bdf in arb_bdf(),
        addr in any::<u64>(),
        write in any::<bool>(),
    ) {
        // With no rules, EVERY packet is disallowed — the fail-closed
        // invariant.
        let mut filter = PacketFilter::new();
        let tlp = if write {
            Tlp::memory_write(bdf, addr, vec![0])
        } else {
            Tlp::memory_read(bdf, addr, 4, 0)
        };
        prop_assert_eq!(filter.classify(tlp.header()), SecurityAction::Disallow);
    }

    #[test]
    fn filter_admission_is_requester_exact(
        admitted in arb_bdf(),
        other in arb_bdf(),
        addr in 0u64..0x1_0000,
    ) {
        prop_assume!(admitted != other);
        let mut filter = PacketFilter::new();
        filter.push_l1(L1Rule::admit(TlpType::MemWrite, admitted));
        filter.push_l2(L2Rule::for_type(TlpType::MemWrite, admitted, SecurityAction::PassThrough));
        let good = Tlp::memory_write(admitted, addr, vec![0]);
        let bad = Tlp::memory_write(other, addr, vec![0]);
        prop_assert_eq!(filter.classify(good.header()), SecurityAction::PassThrough);
        prop_assert_eq!(filter.classify(bad.header()), SecurityAction::Disallow);
    }

    #[test]
    fn device_memory_write_read_consistency(
        writes in proptest::collection::vec(
            (0u64..60_000, proptest::collection::vec(any::<u8>(), 1..256)),
            1..16
        ),
    ) {
        // Model-based check: device memory behaves like a flat byte array.
        let mut mem = DeviceMemory::new(1 << 16);
        let mut model = vec![0u8; 1 << 16];
        for (addr, data) in &writes {
            if *addr as usize + data.len() <= model.len() {
                mem.write(*addr, data).expect("in bounds");
                model[*addr as usize..*addr as usize + data.len()].copy_from_slice(data);
            }
        }
        let snapshot = mem.read(0, 1 << 16).expect("full read");
        prop_assert_eq!(snapshot, model);
    }

    #[test]
    fn bignum_mul_mod_agrees_with_schoolbook(
        a_bytes in proptest::collection::vec(any::<u8>(), 1..24),
        b_bytes in proptest::collection::vec(any::<u8>(), 1..24),
        m_bytes in proptest::collection::vec(any::<u8>(), 2..24),
    ) {
        let a = BigUint::from_bytes_be(&a_bytes);
        let b = BigUint::from_bytes_be(&b_bytes);
        let mut m = BigUint::from_bytes_be(&m_bytes);
        // Montgomery requires an odd modulus >= 3.
        if !m.is_odd() {
            m = m.add(&BigUint::one());
        }
        prop_assume!(m > BigUint::from(2u64));
        let ctx = ccai_crypto::bignum::Montgomery::new(m.clone());
        prop_assert_eq!(ctx.mul_mod(&a, &b), a.mul(&b).rem(&m));
    }

    #[test]
    fn bignum_div_rem_invariant(
        a_bytes in proptest::collection::vec(any::<u8>(), 1..32),
        d_bytes in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        let a = BigUint::from_bytes_be(&a_bytes);
        let d = BigUint::from_bytes_be(&d_bytes);
        prop_assume!(!d.is_zero());
        let (q, r) = a.div_rem(&d);
        prop_assert!(r < d);
        prop_assert_eq!(q.mul(&d).add(&r), a);
    }

    #[test]
    fn bignum_bytes_round_trip(bytes in proptest::collection::vec(1u8..=255, 0..40)) {
        // Leading byte nonzero keeps the encoding canonical.
        let n = BigUint::from_bytes_be(&bytes);
        prop_assert_eq!(n.to_bytes_be(), bytes);
    }
}

// ---- protocol-level properties (fewer cases: modexp-heavy) ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn schnorr_signatures_verify_and_bind_the_message(
        key_seed in any::<[u8; 32]>(),
        msg in proptest::collection::vec(any::<u8>(), 0..256),
        flip in any::<prop::sample::Index>(),
    ) {
        use ccai_crypto::{DhGroup, SchnorrKeyPair};
        let group = DhGroup::sim512();
        let kp = SchnorrKeyPair::generate(&group, &key_seed);
        let sig = kp.sign(&msg);
        prop_assert!(kp.public().verify(&msg, &sig));
        // Any single-byte change to a non-empty message invalidates it.
        if !msg.is_empty() {
            let mut other = msg.clone();
            let idx = flip.index(other.len());
            other[idx] ^= 0x01;
            prop_assert!(!kp.public().verify(&other, &sig));
        }
    }

    #[test]
    fn dh_agreement_is_symmetric_for_any_entropy(
        a_seed in any::<[u8; 32]>(),
        b_seed in any::<[u8; 32]>(),
    ) {
        use ccai_crypto::{DhGroup, DhKeyPair};
        let group = DhGroup::sim512();
        let a = DhKeyPair::generate(&group, &a_seed);
        let b = DhKeyPair::generate(&group, &b_seed);
        prop_assert_eq!(a.agree(b.public()).unwrap(), b.agree(a.public()).unwrap());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hkdf_is_deterministic_and_input_sensitive(
        salt in proptest::collection::vec(any::<u8>(), 0..32),
        ikm in proptest::collection::vec(any::<u8>(), 1..64),
        info in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        use ccai_crypto::hkdf;
        let a = hkdf(&salt, &ikm, &info, 32);
        let b = hkdf(&salt, &ikm, &info, 32);
        prop_assert_eq!(&a, &b);
        let mut ikm2 = ikm.clone();
        ikm2[0] ^= 1;
        prop_assert_ne!(a, hkdf(&salt, &ikm2, &info, 32));
    }

    #[test]
    fn sha256_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        split in any::<prop::sample::Index>(),
    ) {
        use ccai_crypto::{sha256, Sha256};
        let cut = split.index(data.len() + 1);
        let mut h = Sha256::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn link_dma_time_is_monotonic(
        bytes_small in 1u64..(1 << 24),
        extra in 1u64..(1 << 24),
    ) {
        use ccai_pcie::{LinkConfig, LinkSpeed};
        let link = LinkConfig::new(LinkSpeed::Gen4, 16);
        prop_assert!(link.dma_time(bytes_small + extra) > link.dma_time(bytes_small));
        // And faster links are never slower.
        let slow = LinkConfig::new(LinkSpeed::Gen3, 8);
        prop_assert!(slow.dma_time(bytes_small) >= link.dma_time(bytes_small));
    }

    #[test]
    fn iv_manager_never_repeats_within_a_generation(
        prefix in any::<u32>(),
        draws in 1usize..512,
    ) {
        use ccai_crypto::IvManager;
        let mut ivs = IvManager::new(prefix);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..draws {
            let (nonce, _) = ivs.next_iv().unwrap();
            prop_assert!(seen.insert(nonce), "nonce reuse");
        }
    }

    #[test]
    fn tag_records_round_trip_any_content(
        stream in any::<u32>(),
        seq in any::<u64>(),
        tag in any::<[u8; 16]>(),
    ) {
        use ccai_core::handler::TagRecord;
        use ccai_trust::keymgmt::StreamId;
        let record = TagRecord { stream: StreamId(stream), seq, tag };
        prop_assert_eq!(TagRecord::from_bytes(&record.to_bytes()), Some(record));
    }

    #[test]
    fn guest_memory_dma_respects_sharing_for_any_layout(
        share_start in 0u64..0x8000,
        share_len in 1u64..0x4000,
        probe in 0u64..0xFFFF,
    ) {
        use ccai_pcie::{Bdf, HostMemory};
        use ccai_tvm::GuestMemory;
        let mut mem = GuestMemory::new(0x1_0000);
        let share_end = (share_start + share_len).min(0x1_0000);
        mem.share_range(share_start..share_end);
        let dev = Bdf::new(1, 0, 0);
        let readable = mem.dma_read(dev, probe, 1).is_some();
        let expected = probe >= share_start && probe < share_end;
        prop_assert_eq!(readable, expected);
    }
}
