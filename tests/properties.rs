//! Property-based tests over the core data structures and invariants:
//! TLP codec round-trips, AEAD round-trips and tamper detection, policy
//! blob round-trips, filter monotonicity, device-memory consistency, and
//! bignum algebra.

use ccai_core::filter::{L1Rule, L2Rule, PacketFilter, PolicyBlob, SecurityAction};
use ccai_crypto::bignum::BigUint;
use ccai_crypto::scalar::ScalarAesGcm;
use ccai_crypto::{AesGcm, Key, OpenError};
use ccai_pcie::{Bdf, Tlp, TlpType};
use ccai_xpu::DeviceMemory;
use proptest::prelude::*;

fn arb_bdf() -> impl Strategy<Value = Bdf> {
    (any::<u8>(), 0u8..32, 0u8..8).prop_map(|(b, d, f)| Bdf::new(b, d, f))
}

/// Either AES key width, uniformly — exercises both round counts.
fn arb_key() -> impl Strategy<Value = Key> {
    prop_oneof![
        any::<[u8; 16]>().prop_map(Key::Aes128),
        any::<[u8; 32]>().prop_map(Key::Aes256),
    ]
}

/// A payload plus sorted, deduplicated cut points inside it: a random
/// chunk split of the kind the Adaptor's staging path produces.
fn arb_chunk_split() -> impl Strategy<Value = (Vec<u8>, Vec<usize>)> {
    proptest::collection::vec(any::<u8>(), 0..2048).prop_flat_map(|payload| {
        let len = payload.len();
        (
            Just(payload),
            proptest::collection::vec(0usize..len + 1, 0..6).prop_map(|mut cuts| {
                cuts.sort_unstable();
                cuts.dedup();
                cuts
            }),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tlp_memory_write_round_trips(
        bdf in arb_bdf(),
        addr in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 1..2048),
    ) {
        let tlp = Tlp::memory_write(bdf, addr, payload);
        let decoded = Tlp::decode(&tlp.encode()).expect("decodes");
        prop_assert_eq!(decoded, tlp);
    }

    #[test]
    fn tlp_memory_read_round_trips(
        bdf in arb_bdf(),
        addr in any::<u64>(),
        len in 1u32..4096,
        tag in any::<u8>(),
    ) {
        let tlp = Tlp::memory_read(bdf, addr, len, tag);
        let decoded = Tlp::decode(&tlp.encode()).expect("decodes");
        prop_assert_eq!(decoded.header().payload_len(), len);
        prop_assert_eq!(decoded, tlp);
    }

    #[test]
    fn tlp_completion_round_trips(
        completer in arb_bdf(),
        requester in arb_bdf(),
        tag in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 1..512),
    ) {
        let tlp = Tlp::completion_with_data(completer, requester, tag, payload);
        prop_assert_eq!(Tlp::decode(&tlp.encode()).expect("decodes"), tlp);
    }

    #[test]
    fn tlp_decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Tlp::decode(&bytes); // must not panic
    }

    #[test]
    fn gcm_round_trips_any_payload(
        key in any::<[u8; 16]>(),
        nonce in any::<[u8; 12]>(),
        plaintext in proptest::collection::vec(any::<u8>(), 0..4096),
        aad in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let gcm = AesGcm::new(&Key::Aes128(key));
        let sealed = gcm.seal(&nonce, &plaintext, &aad);
        prop_assert_eq!(sealed.len(), plaintext.len() + 16);
        prop_assert_eq!(gcm.open(&nonce, &sealed, &aad).expect("authentic"), plaintext);
    }

    #[test]
    fn gcm_rejects_any_single_byte_corruption(
        key in any::<[u8; 16]>(),
        nonce in any::<[u8; 12]>(),
        plaintext in proptest::collection::vec(any::<u8>(), 1..512),
        corrupt_at in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let gcm = AesGcm::new(&Key::Aes128(key));
        let mut sealed = gcm.seal(&nonce, &plaintext, b"");
        let idx = corrupt_at.index(sealed.len());
        sealed[idx] ^= xor;
        prop_assert!(gcm.open(&nonce, &sealed, b"").is_err());
    }

    #[test]
    fn policy_blob_round_trips(
        requesters in proptest::collection::vec(arb_bdf(), 1..8),
        starts in proptest::collection::vec(0u64..u64::MAX / 2, 1..8),
    ) {
        let l1: Vec<L1Rule> = requesters
            .iter()
            .map(|&r| L1Rule::admit(TlpType::MemWrite, r))
            .chain(std::iter::once(L1Rule::default_deny()))
            .collect();
        let l2: Vec<L2Rule> = requesters
            .iter()
            .zip(starts.iter())
            .map(|(&r, &s)| {
                L2Rule::for_range(TlpType::MemWrite, r, s..s + 0x1000, SecurityAction::CryptProtect)
            })
            .collect();
        let key = Key::Aes128([0x5C; 16]);
        let blob = PolicyBlob::seal(&l1, &l2, &key, [3; 12]);
        let (l1_back, l2_back) = blob.unseal(&key).expect("round trip");
        prop_assert_eq!(l1_back, l1);
        prop_assert_eq!(l2_back, l2);
    }

    #[test]
    fn filter_default_deny_is_total(
        bdf in arb_bdf(),
        addr in any::<u64>(),
        write in any::<bool>(),
    ) {
        // With no rules, EVERY packet is disallowed — the fail-closed
        // invariant.
        let mut filter = PacketFilter::new();
        let tlp = if write {
            Tlp::memory_write(bdf, addr, vec![0])
        } else {
            Tlp::memory_read(bdf, addr, 4, 0)
        };
        prop_assert_eq!(filter.classify(tlp.header()), SecurityAction::Disallow);
    }

    #[test]
    fn filter_admission_is_requester_exact(
        admitted in arb_bdf(),
        other in arb_bdf(),
        addr in 0u64..0x1_0000,
    ) {
        prop_assume!(admitted != other);
        let mut filter = PacketFilter::new();
        filter.push_l1(L1Rule::admit(TlpType::MemWrite, admitted));
        filter.push_l2(L2Rule::for_type(TlpType::MemWrite, admitted, SecurityAction::PassThrough));
        let good = Tlp::memory_write(admitted, addr, vec![0]);
        let bad = Tlp::memory_write(other, addr, vec![0]);
        prop_assert_eq!(filter.classify(good.header()), SecurityAction::PassThrough);
        prop_assert_eq!(filter.classify(bad.header()), SecurityAction::Disallow);
    }

    #[test]
    fn device_memory_write_read_consistency(
        writes in proptest::collection::vec(
            (0u64..60_000, proptest::collection::vec(any::<u8>(), 1..256)),
            1..16
        ),
    ) {
        // Model-based check: device memory behaves like a flat byte array.
        let mut mem = DeviceMemory::new(1 << 16);
        let mut model = vec![0u8; 1 << 16];
        for (addr, data) in &writes {
            if *addr as usize + data.len() <= model.len() {
                mem.write(*addr, data).expect("in bounds");
                model[*addr as usize..*addr as usize + data.len()].copy_from_slice(data);
            }
        }
        let snapshot = mem.read(0, 1 << 16).expect("full read");
        prop_assert_eq!(snapshot, model);
    }

    #[test]
    fn bignum_mul_mod_agrees_with_schoolbook(
        a_bytes in proptest::collection::vec(any::<u8>(), 1..24),
        b_bytes in proptest::collection::vec(any::<u8>(), 1..24),
        m_bytes in proptest::collection::vec(any::<u8>(), 2..24),
    ) {
        let a = BigUint::from_bytes_be(&a_bytes);
        let b = BigUint::from_bytes_be(&b_bytes);
        let mut m = BigUint::from_bytes_be(&m_bytes);
        // Montgomery requires an odd modulus >= 3.
        if !m.is_odd() {
            m = m.add(&BigUint::one());
        }
        prop_assume!(m > BigUint::from(2u64));
        let ctx = ccai_crypto::bignum::Montgomery::new(m.clone());
        prop_assert_eq!(ctx.mul_mod(&a, &b), a.mul(&b).rem(&m));
    }

    #[test]
    fn bignum_div_rem_invariant(
        a_bytes in proptest::collection::vec(any::<u8>(), 1..32),
        d_bytes in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        let a = BigUint::from_bytes_be(&a_bytes);
        let d = BigUint::from_bytes_be(&d_bytes);
        prop_assume!(!d.is_zero());
        let (q, r) = a.div_rem(&d);
        prop_assert!(r < d);
        prop_assert_eq!(q.mul(&d).add(&r), a);
    }

    #[test]
    fn bignum_bytes_round_trip(bytes in proptest::collection::vec(1u8..=255, 0..40)) {
        // Leading byte nonzero keeps the encoding canonical.
        let n = BigUint::from_bytes_be(&bytes);
        prop_assert_eq!(n.to_bytes_be(), bytes);
    }
}

// ---- protocol-level properties (fewer cases: modexp-heavy) ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn control_writes_are_exactly_once_under_duplication_and_reorder(
        seed in any::<u64>(),
        writes in proptest::collection::vec((0usize..6, any::<u64>()), 1..12),
    ) {
        // Arbitrary interleavings of sequenced control writes with
        // injected duplicates and reorders must preserve exactly-once
        // register semantics: a read-back always sees the last value the
        // driver acknowledged, never a replayed older one.
        use ccai_core::{ConfidentialSystem, SystemMode};
        use ccai_pcie::FaultPlan;
        use ccai_tvm::RetryPolicy;
        use ccai_xpu::{Reg, XpuSpec};
        const SIDE_EFFECT_FREE: [Reg; 6] =
            [Reg::DmaSrc, Reg::DmaDst, Reg::DmaLen, Reg::CmdArg0, Reg::CmdArg1, Reg::CmdArg2];

        let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
        system.driver_mut().set_retry_policy(RetryPolicy {
            max_attempts: 8,
            backoff_base: 2,
            ..Default::default()
        });
        // Bring the confidential plumbing (session keys, tag landing,
        // filter rules) up fault-free before injecting; the property
        // under test is the write protocol, not session establishment.
        system.run_workload(b"warmup", b"warmup").expect("fault-free warmup");
        system.inject_faults(
            FaultPlan::duplicate_reorder(seed, 64).with_control_path(),
        );
        let mut model = std::collections::BTreeMap::new();
        let (driver, fabric, _memory, _stager, adaptor) = system.parts();
        let adaptor = adaptor.expect("ccai mode");
        let mut port = adaptor.port(fabric);
        for (reg_idx, value) in &writes {
            let reg = SIDE_EFFECT_FREE[*reg_idx];
            driver.write_register(&mut port, reg, *value).expect("dup/reorder is recoverable");
            model.insert(reg, *value);
        }
        for (reg, expected) in &model {
            let read = driver.read_register(&mut port, *reg).expect("readable");
            prop_assert_eq!(
                read, *expected,
                "register {:?} must hold the last acknowledged value", reg
            );
        }
    }

    #[test]
    fn schnorr_signatures_verify_and_bind_the_message(
        key_seed in any::<[u8; 32]>(),
        msg in proptest::collection::vec(any::<u8>(), 0..256),
        flip in any::<prop::sample::Index>(),
    ) {
        use ccai_crypto::{DhGroup, SchnorrKeyPair};
        let group = DhGroup::sim512();
        let kp = SchnorrKeyPair::generate(&group, &key_seed);
        let sig = kp.sign(&msg);
        prop_assert!(kp.public().verify(&msg, &sig));
        // Any single-byte change to a non-empty message invalidates it.
        if !msg.is_empty() {
            let mut other = msg.clone();
            let idx = flip.index(other.len());
            other[idx] ^= 0x01;
            prop_assert!(!kp.public().verify(&other, &sig));
        }
    }

    #[test]
    fn dh_agreement_is_symmetric_for_any_entropy(
        a_seed in any::<[u8; 32]>(),
        b_seed in any::<[u8; 32]>(),
    ) {
        use ccai_crypto::{DhGroup, DhKeyPair};
        let group = DhGroup::sim512();
        let a = DhKeyPair::generate(&group, &a_seed);
        let b = DhKeyPair::generate(&group, &b_seed);
        prop_assert_eq!(a.agree(b.public()).unwrap(), b.agree(a.public()).unwrap());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hkdf_is_deterministic_and_input_sensitive(
        salt in proptest::collection::vec(any::<u8>(), 0..32),
        ikm in proptest::collection::vec(any::<u8>(), 1..64),
        info in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        use ccai_crypto::hkdf;
        let a = hkdf(&salt, &ikm, &info, 32);
        let b = hkdf(&salt, &ikm, &info, 32);
        prop_assert_eq!(&a, &b);
        let mut ikm2 = ikm.clone();
        ikm2[0] ^= 1;
        prop_assert_ne!(a, hkdf(&salt, &ikm2, &info, 32));
    }

    #[test]
    fn sha256_incremental_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        split in any::<prop::sample::Index>(),
    ) {
        use ccai_crypto::{sha256, Sha256};
        let cut = split.index(data.len() + 1);
        let mut h = Sha256::new();
        h.update(&data[..cut]);
        h.update(&data[cut..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn link_dma_time_is_monotonic(
        bytes_small in 1u64..(1 << 24),
        extra in 1u64..(1 << 24),
    ) {
        use ccai_pcie::{LinkConfig, LinkSpeed};
        let link = LinkConfig::new(LinkSpeed::Gen4, 16);
        prop_assert!(link.dma_time(bytes_small + extra) > link.dma_time(bytes_small));
        // And faster links are never slower.
        let slow = LinkConfig::new(LinkSpeed::Gen3, 8);
        prop_assert!(slow.dma_time(bytes_small) >= link.dma_time(bytes_small));
    }

    #[test]
    fn iv_manager_never_repeats_within_a_generation(
        prefix in any::<u32>(),
        draws in 1usize..512,
    ) {
        use ccai_crypto::IvManager;
        let mut ivs = IvManager::new(prefix);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..draws {
            let (nonce, _) = ivs.next_iv().unwrap();
            prop_assert!(seen.insert(nonce), "nonce reuse");
        }
    }

    #[test]
    fn tag_records_round_trip_any_content(
        stream in any::<u32>(),
        seq in any::<u64>(),
        tag in any::<[u8; 16]>(),
    ) {
        use ccai_core::handler::TagRecord;
        use ccai_trust::keymgmt::StreamId;
        let record = TagRecord { stream: StreamId(stream), seq, tag };
        prop_assert_eq!(TagRecord::from_bytes(&record.to_bytes()), Some(record));
    }

    #[test]
    fn fast_datapath_matches_scalar_oracle_chunk_by_chunk(
        key in arb_key(),
        nonce_base in any::<[u8; 12]>(),
        split in arb_chunk_split(),
        aad in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        // The bench crate enables ccai-crypto's `scalar-oracle` feature,
        // so the seed's byte-at-a-time AEAD is an independent reference
        // for the optimized pipeline under every chunk geometry.
        let (payload, cuts) = split;
        let fast = AesGcm::new(&key);
        let oracle = ScalarAesGcm::new(&key);
        let bounds: Vec<usize> = std::iter::once(0)
            .chain(cuts.iter().copied())
            .chain(std::iter::once(payload.len()))
            .collect();
        for (i, pair) in bounds.windows(2).enumerate() {
            let chunk = &payload[pair[0]..pair[1]];
            // Per-chunk nonce, as on the staging datapath: base ‖ index.
            let mut nonce = nonce_base;
            nonce[8..].copy_from_slice(&(i as u32).to_be_bytes());
            let fast_sealed = fast.seal(&nonce, chunk, &aad);
            prop_assert_eq!(&fast_sealed, &oracle.seal(&nonce, chunk, &aad));
            // Cross-open both ways.
            prop_assert_eq!(oracle.open(&nonce, &fast_sealed, &aad).expect("authentic"), chunk.to_vec());
            prop_assert_eq!(fast.open(&nonce, &fast_sealed, &aad).expect("authentic"), chunk.to_vec());
        }
    }

    #[test]
    fn fast_and_oracle_agree_on_injected_tag_faults(
        key in arb_key(),
        nonce in any::<[u8; 12]>(),
        plaintext in proptest::collection::vec(any::<u8>(), 1..768),
        fault_at in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        // A single flipped bit anywhere in ciphertext or tag must be a
        // TagMismatch on the fast path and a rejection on the oracle.
        let fast = AesGcm::new(&key);
        let oracle = ScalarAesGcm::new(&key);
        let mut sealed = fast.seal(&nonce, &plaintext, b"hdr");
        let idx = fault_at.index(sealed.len());
        sealed[idx] ^= xor;
        prop_assert_eq!(fast.open(&nonce, &sealed, b"hdr"), Err(OpenError::TagMismatch));
        prop_assert_eq!(oracle.open(&nonce, &sealed, b"hdr"), Err(()));
    }

    #[test]
    fn fast_and_oracle_agree_on_truncated_inputs(
        key in arb_key(),
        nonce in any::<[u8; 12]>(),
        keep in 0usize..16,
    ) {
        // Shorter than one tag: a distinct Truncated error, never a
        // plaintext, and the oracle rejects the same inputs.
        let fast = AesGcm::new(&key);
        let oracle = ScalarAesGcm::new(&key);
        let sealed = fast.seal(&nonce, b"payload", b"");
        let truncated = &sealed[..keep];
        prop_assert_eq!(fast.open(&nonce, truncated, b""), Err(OpenError::Truncated));
        prop_assert_eq!(oracle.open(&nonce, truncated, b""), Err(()));
    }

    #[test]
    fn detached_seal_matches_oracle_and_survives_tag_faults(
        key in arb_key(),
        nonce in any::<[u8; 12]>(),
        plaintext in proptest::collection::vec(any::<u8>(), 0..1024),
        xor in 1u8..=255,
    ) {
        let fast = AesGcm::new(&key);
        let oracle = ScalarAesGcm::new(&key);
        let mut buf = plaintext.clone();
        let tag = fast.seal_in_place_detached(&nonce, &mut buf, b"aad");
        // Detached form ≡ the oracle's attached form.
        let mut attached = buf.clone();
        attached.extend_from_slice(&tag);
        prop_assert_eq!(&attached, &oracle.seal(&nonce, &plaintext, b"aad"));
        // Injected tag fault: rejected without touching the buffer.
        let ciphertext = buf.clone();
        let mut bad = tag;
        bad[0] ^= xor;
        prop_assert_eq!(
            fast.open_in_place_detached(&nonce, &mut buf, &bad, b"aad"),
            Err(OpenError::TagMismatch)
        );
        prop_assert_eq!(&buf, &ciphertext);
        fast.open_in_place_detached(&nonce, &mut buf, &tag, b"aad").expect("authentic");
        prop_assert_eq!(buf, plaintext);
    }

    #[test]
    fn guest_memory_dma_respects_sharing_for_any_layout(
        share_start in 0u64..0x8000,
        share_len in 1u64..0x4000,
        probe in 0u64..0xFFFF,
    ) {
        use ccai_pcie::{Bdf, HostMemory};
        use ccai_tvm::GuestMemory;
        let mut mem = GuestMemory::new(0x1_0000);
        let share_end = (share_start + share_len).min(0x1_0000);
        mem.share_range(share_start..share_end);
        let dev = Bdf::new(1, 0, 0);
        let readable = mem.dma_read(dev, probe, 1).is_some();
        let expected = probe >= share_start && probe < share_end;
        prop_assert_eq!(readable, expected);
    }
}

/// One warmed template snapshot, built once: corruption properties below
/// mutate copies of these bytes.
fn template_snapshot_bytes() -> &'static [u8] {
    use ccai_core::{ConfidentialSystem, SystemMode};
    use std::sync::OnceLock;
    static TEMPLATE: OnceLock<Vec<u8>> = OnceLock::new();
    TEMPLATE.get_or_init(|| {
        let mut system = ConfidentialSystem::build(ccai_xpu::XpuSpec::a100(), SystemMode::CcAi);
        system.load_model(b"template weights for corruption properties").expect("load");
        system.snapshot().as_bytes().to_vec()
    })
}

fn arb_fault_plan() -> impl Strategy<Value = ccai_pcie::FaultPlan> {
    (
        (any::<u64>(), 0u16..1024, 0u16..1024, 0u16..1024),
        (0u16..1024, 0u16..1024, any::<u8>(), 0u16..1024),
        any::<bool>(),
    )
        .prop_map(
            |((seed, corrupt, drop, duplicate), (reorder, flap, flap_len, delay), control)| {
                ccai_pcie::FaultPlan {
                    seed,
                    corrupt_per_1024: corrupt,
                    drop_per_1024: drop,
                    duplicate_per_1024: duplicate,
                    reorder_per_1024: reorder,
                    flap_per_1024: flap,
                    flap_len,
                    delay_per_1024: delay,
                    fault_control_path: control,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn snapshot_primitives_round_trip(
        ints in (any::<u8>(), any::<u16>(), any::<u32>(), any::<u64>()),
        flag in any::<bool>(),
        float in any::<u32>().prop_map(|bits| f64::from(bits) * 0.5 - 1e9),
        blob in proptest::collection::vec(any::<u8>(), 0..512),
        text in proptest::collection::vec(32u8..127, 0..64)
            .prop_map(|chars| String::from_utf8(chars).expect("printable ASCII")),
    ) {
        use ccai_sim::snapshot::{Decoder, Encoder};
        let (a, b, c, d) = ints;
        let mut enc = Encoder::versioned();
        enc.u8(a);
        enc.u16(b);
        enc.u32(c);
        enc.u64(d);
        enc.bool(flag);
        enc.f64(float);
        enc.bytes(&blob);
        enc.str(&text);
        let bytes = enc.finish();
        let mut dec = Decoder::versioned(&bytes).expect("envelope");
        prop_assert_eq!(dec.u8().expect("u8"), a);
        prop_assert_eq!(dec.u16().expect("u16"), b);
        prop_assert_eq!(dec.u32().expect("u32"), c);
        prop_assert_eq!(dec.u64().expect("u64"), d);
        prop_assert_eq!(dec.bool().expect("bool"), flag);
        prop_assert_eq!(dec.f64().expect("f64"), float);
        prop_assert_eq!(dec.bytes().expect("bytes"), blob);
        prop_assert_eq!(dec.str().expect("str"), text);
        dec.finish().expect("fully consumed");
    }

    #[test]
    fn fault_plan_snapshot_round_trips(plan in arb_fault_plan()) {
        use ccai_sim::snapshot::{decode_versioned, encode_versioned};
        let bytes = encode_versioned(&plan);
        let decoded: ccai_pcie::FaultPlan = decode_versioned(&bytes).expect("round-trips");
        prop_assert_eq!(decoded, plan);
    }

    #[test]
    fn truncated_snapshots_are_typed_errors(
        plan in arb_fault_plan(),
        cut in any::<prop::sample::Index>(),
    ) {
        // Every strict prefix decodes to a typed error — never a panic,
        // never a silently-short value (full consumption is enforced).
        use ccai_sim::snapshot::{decode_versioned, encode_versioned};
        let bytes = encode_versioned(&plan);
        let prefix = &bytes[..cut.index(bytes.len())];
        prop_assert!(decode_versioned::<ccai_pcie::FaultPlan>(prefix).is_err());
        // And so does trailing garbage.
        let mut extended = bytes.clone();
        extended.push(0);
        prop_assert!(decode_versioned::<ccai_pcie::FaultPlan>(&extended).is_err());
    }

    #[test]
    fn corrupted_system_snapshots_never_panic(
        cut in any::<prop::sample::Index>(),
        flip_at in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        use ccai_core::snapshot::SystemSnapshot;
        use ccai_core::ConfidentialSystem;
        let template = template_snapshot_bytes();
        // Truncation at any point must be a typed error.
        let truncated = template[..cut.index(template.len())].to_vec();
        prop_assert!(ConfidentialSystem::resume(&SystemSnapshot::from_bytes(truncated)).is_err());
        // A byte flip anywhere must not panic; if the flip lands in a
        // don't-care byte resume may still succeed, but it must return.
        let mut flipped = template.to_vec();
        let idx = flip_at.index(flipped.len());
        flipped[idx] ^= xor;
        let _ = ConfidentialSystem::resume(&SystemSnapshot::from_bytes(flipped));
    }
}

// --- token-bucket rate limiting ------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation: however the takes are spaced, the bucket never
    /// admits more than its burst plus what the refill rate accrued over
    /// the elapsed time — in exact pico-token arithmetic, no float slop.
    #[test]
    fn token_bucket_never_over_admits(
        burst in 1u64..64,
        rate in 1u64..1_000,
        gaps in proptest::collection::vec(0u64..2_000_000_000_000, 1..128),
    ) {
        use ccai_sim::rate::PICO_TOKENS_PER_TOKEN;
        use ccai_sim::{SimTime, TokenBucket};
        let mut bucket = TokenBucket::new(burst, rate);
        let mut now_picos = 0u64;
        let mut accepted = 0u128;
        for gap in gaps {
            now_picos += gap;
            if bucket.try_take(1, SimTime::from_picos(now_picos)) {
                accepted += 1;
            }
        }
        let ceiling = u128::from(burst) * PICO_TOKENS_PER_TOKEN
            + u128::from(rate) * u128::from(now_picos);
        prop_assert!(
            accepted * PICO_TOKENS_PER_TOKEN <= ceiling,
            "accepted {} tokens > burst {} + rate {} x {} ps",
            accepted, burst, rate, now_picos
        );
    }

    /// Monotone refills: with no successful takes draining it, the
    /// budget never decreases as time advances, and never exceeds the
    /// burst cap.
    #[test]
    fn token_bucket_refills_monotonically(
        burst in 1u64..64,
        rate in 1u64..1_000,
        drain in 0u64..64,
        gaps in proptest::collection::vec(0u64..500_000_000_000, 1..64),
    ) {
        use ccai_sim::rate::PICO_TOKENS_PER_TOKEN;
        use ccai_sim::{SimTime, TokenBucket};
        let mut bucket = TokenBucket::new(burst, rate);
        // Drain part of the initial burst so refill has headroom.
        let _ = bucket.try_take(drain.min(burst), SimTime::ZERO);
        let mut now_picos = 0u64;
        let mut last = bucket.budget_pico_tokens();
        for gap in gaps {
            now_picos += gap;
            // A zero-token take costs nothing but forces a refill.
            prop_assert!(bucket.try_take(0, SimTime::from_picos(now_picos)));
            let budget = bucket.budget_pico_tokens();
            prop_assert!(budget >= last, "budget moved backwards: {last} -> {budget}");
            prop_assert!(budget <= u128::from(burst) * PICO_TOKENS_PER_TOKEN);
            last = budget;
        }
    }

    /// Exactly-once admission at the refill boundary: after a refusal,
    /// `time_until` names the first instant a take succeeds — one
    /// picosecond earlier still refuses, and the admitted take spends
    /// the accrued token (an immediate retry at the same instant fails
    /// for an empty-at-boundary bucket).
    #[test]
    fn token_bucket_admits_exactly_at_the_refill_boundary(
        rate in 1u64..1_000,
        lead in 0u64..1_000_000_000,
    ) {
        use ccai_sim::{SimDuration, SimTime, TokenBucket};
        // burst 1: drain it, then the next admission is purely rate-driven.
        let mut bucket = TokenBucket::new(1, rate);
        let start = SimTime::from_picos(lead);
        prop_assert!(bucket.try_take(1, start));
        prop_assert!(!bucket.try_take(1, start));
        let wait = bucket.time_until(1, start);
        prop_assert!(!wait.is_zero());
        let ready = start + wait;
        let early = SimTime::from_picos(ready.as_picos() - 1);
        prop_assert!(!bucket.try_take(1, early), "admitted one picosecond early");
        prop_assert!(bucket.try_take(1, ready), "refused at the promised instant");
        prop_assert!(!bucket.try_take(1, ready), "admitted twice at the boundary");
        // The follow-up wait is a full token at the refill rate.
        let next = bucket.time_until(1, ready);
        prop_assert!(next >= wait.min(SimDuration::from_picos(1)));
    }
}
