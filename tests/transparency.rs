//! The G1 transparency claims, verified structurally: the *same*
//! unmodified driver and application code runs against vanilla and
//! protected platforms with identical results, across every xPU.

use ccai_core::system::{ConfidentialSystem, SystemMode};
use ccai_xpu::{CommandProcessor, XpuSpec};

/// "The application": knows nothing about ccAI — it only sees the
/// system handle. The SAME function body serves both platforms.
fn user_application(system: &mut ConfidentialSystem, weights: &[u8], prompt: &[u8]) -> Vec<u8> {
    system
        .run_workload(weights, prompt)
        .expect("application-level inference")
}

#[test]
fn identical_results_across_all_modes_and_devices() {
    let weights = vec![0xC3u8; 120_000];
    let prompt = vec![0x3Cu8; 18_000];
    let expected = CommandProcessor::surrogate_inference(&weights, &prompt);

    for spec in XpuSpec::evaluation_set() {
        for mode in [SystemMode::Vanilla, SystemMode::CcAi, SystemMode::CcAiUnoptimized] {
            let name = format!("{} / {:?}", spec.name(), mode);
            let mut system = ConfidentialSystem::build(spec.clone(), mode);
            let result = user_application(&mut system, &weights, &prompt);
            assert_eq!(result, expected, "{name}");
        }
    }
}

#[test]
fn driver_issues_identical_register_traffic() {
    // The driver's MMIO pattern must be byte-identical in both modes —
    // that is what "no driver changes" means on the wire. We assert it
    // indirectly but strongly: the xPU's observable state transitions
    // produce the same results, and the Adaptor port counters show the
    // driver wrote the same number of registers.
    let weights = vec![1u8; 30_000];
    let prompt = vec![2u8; 5_000];

    let mut ccai = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    ccai.run_workload(&weights, &prompt).unwrap();
    let ccai_writes = ccai.adaptor_counters().driver_mmio_writes;

    // Driver flow: init(0) + 3×DMA(4 regs + doorbell... = 4 writes each)
    // + LoadModel (3 writes) + RunInference (4 writes). The exact count
    // matters less than its *stability*: a second identical run must
    // issue exactly the same number again.
    let mut ccai2 = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    ccai2.run_workload(&weights, &prompt).unwrap();
    assert_eq!(ccai2.adaptor_counters().driver_mmio_writes, ccai_writes);
    assert!(ccai_writes >= 15, "register programming happened: {ccai_writes}");
}

#[test]
fn varied_workload_sizes_round_trip() {
    // Chunk-boundary sweep: sizes below/at/above the 4 KiB chunk and the
    // 128-tag batch boundary.
    let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    for (w_len, i_len) in [
        (1usize, 1usize),
        (4095, 17),
        (4096, 4096),
        (4097, 4095),
        (128 * 4096, 33),      // exactly one full tag batch
        (128 * 4096 + 1, 100), // spills into a second batch
        (300_000, 70_000),
    ] {
        let weights = vec![0xABu8; w_len];
        let prompt = vec![0xCDu8; i_len];
        let result = system.run_workload(&weights, &prompt).unwrap();
        assert_eq!(
            result,
            CommandProcessor::surrogate_inference(&weights, &prompt),
            "sizes ({w_len}, {i_len})"
        );
    }
    assert_eq!(system.sc().unwrap().alerts().len(), 0);
}

#[test]
fn protection_survives_task_lifecycle() {
    let mut system = ConfidentialSystem::build(XpuSpec::t4(), SystemMode::CcAi);
    let r1 = system.run_workload(b"model-a", b"question-1").unwrap();
    system.end_task();
    // New task on the same platform: keys were destroyed; streams are
    // re-provisioned transparently.
    let r2 = system.run_workload(b"model-a", b"question-1").unwrap();
    assert_eq!(r1, r2);
    assert_eq!(system.sc().unwrap().alerts().len(), 0);
}

#[test]
fn unoptimized_mode_is_functionally_identical() {
    let weights = vec![9u8; 80_000];
    let prompt = vec![8u8; 12_000];
    let mut opt = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    let mut noopt = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAiUnoptimized);
    assert_eq!(
        opt.run_workload(&weights, &prompt).unwrap(),
        noopt.run_workload(&weights, &prompt).unwrap(),
        "optimizations change cost, never results"
    );
    // But their I/O counters differ dramatically (the §5 point).
    assert!(
        noopt.adaptor_counters().sc_mmio_reads
            > opt.adaptor_counters().sc_mmio_reads + 10
    );
}

#[test]
fn all_three_vendor_stacks_run_protected_without_changes() {
    // The §7 software stacks — CUDA-like, tt-buda-like, EFSMI-like —
    // each with its own call discipline, all run byte-identically against
    // vanilla and ccAI platforms. The stack code contains zero ccAI
    // knowledge.
    use ccai_tvm::stack_for_vendor;

    let weights = b"vendor-model-weights".repeat(64);
    let input = b"vendor-prompt".repeat(32);
    let expected = CommandProcessor::surrogate_inference(&weights, &input);

    for spec in [
        XpuSpec::a100(),           // → CUDA-like
        XpuSpec::tenstorrent_n150d(), // → tt-buda-like
        XpuSpec::enflame_s60(),    // → EFSMI-like
    ] {
        for mode in [SystemMode::Vanilla, SystemMode::CcAi] {
            let vendor = spec.vendor().to_string();
            let mut system = ConfidentialSystem::build(spec.clone(), mode);
            let tvm = system.tvm_bdf();
            // Bind the vendor stack over the system's driver parts.
            let device_bdf = {
                let (driver, _, _, _, _) = system.parts();
                driver.device_bdf()
            };
            let driver = ccai_tvm::XpuDriver::bind(
                tvm,
                device_bdf,
                match vendor.as_str() {
                    "NVIDIA" => 0x10DE,
                    "Tenstorrent" => 0x1E52,
                    _ => 0x1EA0,
                },
                // The stack needs the register layout; rebuild it the way
                // a probe would.
                ccai_xpu::RegisterFile::with_layout(&vendor, 0),
                ccai_core::system::layout::XPU_BAR_BASE,
                ccai_core::system::layout::XPU_BAR_BASE + (1 << 28),
            );
            let mut stack = stack_for_vendor(&vendor, driver);
            // ensure the confidential plumbing is up before driving the
            // stack directly
            system.run_workload(b"warmup", b"warmup").unwrap();

            let (_, fabric, memory, stager, adaptor) = system.parts();
            let result = match adaptor {
                Some(adaptor) => {
                    let mut port = adaptor.port(fabric);
                    stack.initialize(&mut port, memory, stager).unwrap();
                    let model = stack.load_model(&mut port, memory, stager, &weights).unwrap();
                    stack.infer(&mut port, memory, stager, model, &input).unwrap()
                }
                None => {
                    stack.initialize(fabric, memory, stager).unwrap();
                    let model = stack.load_model(fabric, memory, stager, &weights).unwrap();
                    stack.infer(fabric, memory, stager, model, &input).unwrap()
                }
            };
            assert_eq!(result, expected, "{} stack under {:?}", stack.name(), mode);
        }
    }
}

#[test]
fn parallel_crypto_path_is_equivalent_to_serial() {
    // Above PARALLEL_CRYPTO_THRESHOLD the Adaptor fans chunk encryption
    // across crypto lanes (§5). The SC must not be able to tell: both
    // paths produce identical, decryptable streams.
    let big_weights = vec![0x5Au8; 512 * 1024]; // parallel path
    let small_input = vec![0xA5u8; 8 * 1024]; // serial path
    let expected = CommandProcessor::surrogate_inference(&big_weights, &small_input);
    let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    let result = system.run_workload(&big_weights, &small_input).unwrap();
    assert_eq!(result, expected);
    assert_eq!(system.sc().unwrap().alerts().len(), 0);
    assert!(system.sc_counters().chunks_decrypted >= 128);
}
