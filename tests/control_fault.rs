//! Differential recovery tests for the *control plane* under fault
//! injection.
//!
//! [`FaultPlan::with_control_path`] extends the seeded injector to the
//! host-initiated traffic the datapath suite deliberately left reliable:
//! config accesses, driver BAR0 register writes and the SC control
//! window. The sequence-numbered control envelopes, the driver's
//! read-back-verified register protocol and the Adaptor's go-back-N
//! window must together make every control-fault class invisible: the
//! workload still completes, and the final xPU memory, register file and
//! SC filter state converge to the fault-free baseline — while the same
//! seed replays the identical fault trace and telemetry digest.

use ccai_core::{ConfidentialSystem, SystemMode};
use ccai_pcie::{FaultEvent, FaultPlan};
use ccai_tvm::RetryPolicy;
use ccai_xpu::{CommandProcessor, Reg, RegisterFile, XpuSpec};

const WEIGHTS_LEN: usize = 20_000;
const INPUT_LEN: usize = 6_000;

fn workload() -> (Vec<u8>, Vec<u8>) {
    let weights: Vec<u8> = (0..WEIGHTS_LEN).map(|i| (i * 131 % 251) as u8).collect();
    let input: Vec<u8> = (0..INPUT_LEN).map(|i| (i * 17 % 241) as u8).collect();
    (weights, input)
}

struct RunOutcome {
    result: Vec<u8>,
    memory_digest: [u8; 32],
    registers: RegisterFile,
    filter_digest: String,
    filter_rules: (usize, usize),
    trace: Vec<FaultEvent>,
    telemetry_digest: String,
    control_retries: u64,
}

fn run_with_plan(plan: Option<FaultPlan>) -> RunOutcome {
    let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    system
        .driver_mut()
        .set_retry_policy(RetryPolicy { max_attempts: 8, backoff_base: 2, ..Default::default() });
    if let Some(plan) = plan {
        system.inject_faults(plan);
    }
    let (weights, input) = workload();
    let result = system
        .run_workload(&weights, &input)
        .unwrap_or_else(|e| panic!("plan {plan:?}: workload failed: {e}"));
    RunOutcome {
        result,
        memory_digest: system.xpu_memory_digest(),
        registers: system.xpu_register_snapshot(),
        filter_digest: system.sc_filter_digest(),
        filter_rules: system.sc_filter_rule_counts(),
        trace: system.fault_trace(),
        telemetry_digest: system.telemetry().digest_hex(),
        control_retries: system.driver().control_retries()
            + system.adaptor_counters().control_retries,
    }
}

/// Registers whose final value is a pure function of the workload.
/// `DmaSrc`/`DmaDst` legitimately differ after recovery: a retried
/// transfer re-stages into a fresh bounce-buffer window, so the last
/// programmed staging address depends on how many retries the fault
/// schedule forced. That is recovery working as designed, not state
/// divergence — the memory digest proves the payloads still converged.
const STABLE_REGS: [Reg; 9] = [
    Reg::DmaLen,
    Reg::DmaCtrl,
    Reg::DmaStatus,
    Reg::IntStatus,
    Reg::CmdDoorbell,
    Reg::CmdArg1,
    Reg::CmdStatus,
    Reg::ResetCtrl,
    Reg::FirmwareVersion,
];

fn control_plans() -> [(&'static str, FaultPlan); 6] {
    [
        ("light", FaultPlan::light(7).with_control_path()),
        ("drop", FaultPlan::drop_only(11, 16).with_control_path()),
        ("corrupt", FaultPlan::corrupt_only(13, 24).with_control_path()),
        ("dup+reorder", FaultPlan::duplicate_reorder(17, 64).with_control_path()),
        ("delay", FaultPlan::delay_only(19, 200).with_control_path()),
        ("flap", FaultPlan::flap_only(23, 8, 3).with_control_path()),
    ]
}

#[test]
fn every_control_fault_class_converges_to_the_fault_free_baseline() {
    let baseline = run_with_plan(None);
    let (weights, input) = workload();
    assert_eq!(
        baseline.result,
        CommandProcessor::surrogate_inference(&weights, &input),
        "fault-free baseline must be correct to begin with"
    );
    assert_eq!(baseline.control_retries, 0, "fault-free run needs no control retries");

    for (name, plan) in control_plans() {
        let faulted = run_with_plan(Some(plan));
        assert_eq!(
            faulted.result, baseline.result,
            "{name}: inference result must match the fault-free run"
        );
        assert_eq!(
            faulted.memory_digest, baseline.memory_digest,
            "{name}: xPU memory must be byte-identical to the fault-free run"
        );
        assert_eq!(
            faulted.filter_digest, baseline.filter_digest,
            "{name}: SC filter tables must converge to the baseline state"
        );
        assert_eq!(faulted.filter_rules, baseline.filter_rules);
        for reg in STABLE_REGS {
            assert_eq!(
                faulted.registers.read(reg),
                baseline.registers.read(reg),
                "{name}: register {reg:?} diverged from the fault-free run"
            );
        }
    }
}

#[test]
fn same_seed_control_fault_run_replays_identically() {
    let plan = FaultPlan::drop_only(0xC0A1, 48).with_control_path();
    let a = run_with_plan(Some(plan));
    let b = run_with_plan(Some(plan));
    assert!(!a.trace.is_empty(), "the plan must inject something");
    assert_eq!(a.trace, b.trace, "same seed must replay the identical fault trace");
    assert_eq!(
        a.telemetry_digest, b.telemetry_digest,
        "same seed must replay the identical telemetry trace digest"
    );
    assert_eq!(a.memory_digest, b.memory_digest);
    assert_eq!(a.registers, b.registers, "even staging addresses must replay exactly");
    assert_eq!(a.control_retries, b.control_retries);
}

#[test]
fn control_faults_actually_exercise_the_retry_protocol() {
    // A drop-heavy control plan must force visible control-plane
    // recovery work — otherwise the differential assertions above would
    // be vacuous.
    let mut exercised = false;
    for (_, plan) in control_plans() {
        let outcome = run_with_plan(Some(plan));
        if outcome.control_retries > 0 {
            exercised = true;
            break;
        }
    }
    assert!(exercised, "at least one control-fault class must trigger control retries");
}

#[test]
fn control_faults_leave_datapath_free_plans_untouched() {
    // Arming the knob on a fault-free plan changes nothing: the guard
    // consumes zero randomness, so the run equals a no-injector run.
    let clean = run_with_plan(None);
    let armed = run_with_plan(Some(FaultPlan::fault_free(99).with_control_path()));
    assert!(armed.trace.is_empty(), "a fault-free plan must inject nothing");
    assert_eq!(armed.result, clean.result);
    assert_eq!(armed.memory_digest, clean.memory_digest);
    assert_eq!(armed.control_retries, 0);
}
