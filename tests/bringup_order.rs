//! §6 bring-up adversary battery: the attestation-gated bring-up state
//! machine is attacked from four directions and holds on every one.
//!
//! 1. **Ordering** — property tests drive random permutations and
//!    in-order prefixes of the five bring-up steps; exactly one order
//!    (secure-boot → attest → release-keys → arm-filters → serve)
//!    reaches `Serving`, and every out-of-order step is refused with a
//!    typed error while the machine stays put.
//! 2. **Reset replay** — an adversary records a healthy session's
//!    sequenced control-window and MMIO TLPs, power-cycles the SC, and
//!    replays the capture against the freshly brought-up instance. The
//!    persisted anti-replay floors refuse every stale sequence.
//! 3. **TOCTOU** — a measurement mutated between attestation and key
//!    release blocks the release, rolls the machine back, and leaves
//!    the drift attestable: re-attestation against the same golden
//!    values fails until a power cycle with clean measurements.
//! 4. **Bounce-buffer pacing** — a bus observer records only
//!    (size, sim-time) pairs for staged data chunks and proves the
//!    sequence is content-independent: two runs over different secrets
//!    of equal length produce bit-identical pacing traces.
//!
//! When `CCAI_TRACE_DIGEST_OUT` names a file, the determinism test dumps
//! the battery digest to `<file>.bringup` so CI can diff two runs.

use ccai_core::system::{layout, ConfidentialSystem, SystemMode};
use ccai_pcie::fabric::BusTap;
use ccai_pcie::{parse_ctrl_envelope, Bdf, BusAdversary, FaultPlan, Tlp, TlpType};
use ccai_sim::Telemetry;
use ccai_trust::{
    AttestationError, BringUpError, BringUpState, BringUpStep, PcrIndex, TrustFixture,
};
use ccai_xpu::{CommandProcessor, XpuSpec};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

fn secrets() -> (Vec<u8>, Vec<u8>) {
    (
        b"WEIGHTS-SECRET-".repeat(700),
        b"PROMPT-SECRET--".repeat(40),
    )
}

/// Position of a state along the legal bring-up chain.
fn state_index(state: BringUpState) -> usize {
    match state {
        BringUpState::PowerOn => 0,
        BringUpState::SecureBooted => 1,
        BringUpState::Attested => 2,
        BringUpState::KeysReleased => 3,
        BringUpState::FiltersArmed => 4,
        BringUpState::Serving => 5,
    }
}

/// True if `needle` appears in `haystack` as an order-preserving
/// subsequence.
fn is_subsequence(needle: &[usize], haystack: &[usize]) -> bool {
    let mut want = needle.iter();
    let mut next = want.next();
    for &step in haystack {
        if Some(&step) == next {
            next = want.next();
        }
    }
    next.is_none()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Of all 120 permutations of the five steps, exactly the canonical
    /// one reaches `Serving`. The final state equals the greedy match of
    /// the canonical chain against the permutation, keys are released
    /// iff the first three steps appear in relative order, and every
    /// off-chain step is refused without moving the machine.
    #[test]
    fn only_the_canonical_permutation_reaches_serving(
        order in Just((0usize..5).collect::<Vec<_>>()).prop_shuffle(),
        seed in any::<u8>(),
    ) {
        let (mut bringup, mut env) = TrustFixture::deterministic(seed);
        let mut expect = 0usize;
        let mut refused = 0usize;
        for &step in &order {
            let before = bringup.state();
            let outcome = bringup.apply(BringUpStep::ALL[step], &mut env);
            if step == expect {
                prop_assert!(outcome.is_ok(), "on-chain step {step} refused: {outcome:?}");
                expect += 1;
            } else {
                prop_assert!(
                    matches!(outcome, Err(BringUpError::OutOfOrder { .. })),
                    "off-chain step {step} must be refused as out-of-order, got {outcome:?}"
                );
                prop_assert_eq!(bringup.state(), before, "a refused step must not move the machine");
                refused += 1;
            }
        }
        prop_assert_eq!(state_index(bringup.state()), expect);
        prop_assert_eq!(refused, 5 - expect);
        let canonical: Vec<usize> = (0..5).collect();
        prop_assert_eq!(bringup.is_serving(), order == canonical);
        prop_assert_eq!(
            bringup.master().is_some(),
            is_subsequence(&[0, 1, 2], &order),
            "keys release exactly when boot, attest, release appear in order"
        );
    }

    /// Arbitrary in-order subsets of the chain: the machine advances
    /// through the longest leading run and refuses everything past the
    /// first gap; only the complete chain serves.
    #[test]
    fn prefixes_with_gaps_stop_short_of_serving(
        steps in prop::sample::subsequence((0usize..5).collect::<Vec<_>>(), 1..6),
        seed in any::<u8>(),
    ) {
        let (mut bringup, mut env) = TrustFixture::deterministic(seed);
        let mut expect = 0usize;
        for &step in &steps {
            let outcome = bringup.apply(BringUpStep::ALL[step], &mut env);
            if step == expect {
                prop_assert!(outcome.is_ok(), "contiguous step {step} refused: {outcome:?}");
                expect += 1;
            } else {
                prop_assert!(matches!(outcome, Err(BringUpError::OutOfOrder { .. })));
            }
        }
        prop_assert_eq!(state_index(bringup.state()), expect);
        let full: Vec<usize> = (0..5).collect();
        prop_assert_eq!(bringup.is_serving(), steps == full);
    }
}

/// Everything the bus adversary captured from a healthy session, split
/// into the two replayable populations: sequenced control-window writes
/// and sequenced MMIO writes into the device BAR.
fn capture_session(snooper: &BusAdversary, tvm: Bdf) -> (Vec<Tlp>, Vec<Tlp>) {
    let log = snooper.log();
    let ctrl_window =
        layout::SC_REGION..layout::SC_REGION + ccai_core::sc::regs::WINDOW_LEN;
    let mut ctrl = Vec::new();
    let mut mmio = Vec::new();
    for tlp in log.of_type(TlpType::MemWrite) {
        let addr = tlp.header().address().unwrap_or(0);
        if ctrl_window.contains(&addr) && parse_ctrl_envelope(tlp.payload()).is_some() {
            ctrl.push(tlp.clone());
        } else if addr >= layout::XPU_BAR_BASE && tlp.header().requester() == tvm {
            mmio.push(tlp.clone());
        }
    }
    (ctrl, mmio)
}

#[test]
fn power_cycle_demands_fresh_bringup_and_refuses_replayed_tlps() {
    let (weights, prompt) = secrets();
    let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    let snooper = BusAdversary::new();
    system.fabric_mut().add_tap(snooper.tap());
    system.run_workload(&weights, &prompt).unwrap();
    assert!(system.sc_is_serving(), "a built system has completed bring-up");

    let (ctrl, mmio) = capture_session(&snooper, system.tvm_bdf());
    assert!(!ctrl.is_empty(), "a protected run must emit sequenced control writes");
    assert!(!mmio.is_empty(), "a protected run must emit sequenced MMIO writes");

    // Power-cycle the SC: volatile state (key schedules, filter tables,
    // staged policy, counters) is gone; the anti-replay floors persist.
    system.reset().expect("power cycle");
    assert!(!system.sc_is_serving(), "a reset SC must not serve");

    // Before bring-up completes, the data path is hard-denied in both
    // directions — the probe dies at the SC, not at the device.
    let deny_before = system.telemetry().counter("sc.bringup_deny");
    let probe = Tlp::memory_read(system.tvm_bdf(), layout::XPU_BAR_BASE, 8, 0x7C);
    let replies = system.fabric_mut().host_request(probe);
    assert!(
        replies.iter().all(|r| r.payload().is_empty()),
        "no data may flow before bring-up reaches Serving"
    );
    assert!(
        system.telemetry().counter("sc.bringup_deny") > deny_before,
        "the pre-Serving denial must be visible in telemetry"
    );

    // A workload cannot run against a de-armed gate either.
    assert!(
        system.run_workload(&weights, &prompt).is_err(),
        "workloads must fail until bring-up re-arms the gate"
    );

    // Re-run the full attested bring-up chain; the gate re-arms.
    system.complete_bringup().expect("fresh bring-up");
    assert!(system.sc_is_serving());

    // The adversary replays the pre-reset capture against the reborn
    // SC. Every sequenced write carries a stale sequence number below
    // the persisted floor, so the exactly-once windows refuse them all:
    // the filter tables do not move and nothing is silently absorbed.
    let filter_before = system.sc_filter_digest();
    let before = system.sc_counters();
    for tlp in ctrl.iter().chain(mmio.iter()).cloned() {
        system.fabric_mut().host_request(tlp);
    }
    let after = system.sc_counters();
    assert_eq!(
        system.sc_filter_digest(),
        filter_before,
        "replayed pre-reset control writes must not move the filter tables"
    );
    assert!(
        after.control_dup_suppressed > before.control_dup_suppressed
            || after.packets_blocked > before.packets_blocked,
        "the replay must be visibly rejected, not silently absorbed"
    );

    // The power cycle was a denial event, not a correctness event: a
    // fresh workload on the brought-up system still computes the right
    // answer.
    let result = system.run_workload(&weights, &prompt).expect("post-reset workload");
    assert_eq!(result, CommandProcessor::surrogate_inference(&weights, &prompt));
}

#[test]
fn quarantine_survives_the_power_cycle() {
    // A power cycle must not launder containment: the quarantine flag
    // rides the persistent SC state across reset, and the quarantined
    // tenant stays A1-denied even after a clean re-attested bring-up.
    let (weights, prompt) = secrets();
    let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    system.run_workload(&weights, &prompt).unwrap();

    system.inject_faults(FaultPlan::corrupt_only(0xBAD, 1024));
    assert!(system.run_workload(&weights, &prompt).is_err(), "channel is unrecoverable");
    system.clear_faults();
    let xpu_bdf = Bdf::new(layout::XPU_BDF.0, layout::XPU_BDF.1, layout::XPU_BDF.2);
    assert!(system.sc().unwrap().is_quarantined(xpu_bdf));

    system.reset().expect("power cycle");
    assert!(
        system.sc().unwrap().is_quarantined(xpu_bdf),
        "reset must not lift a quarantine"
    );

    system.complete_bringup().expect("fresh bring-up");
    assert!(
        system.sc().unwrap().is_quarantined(xpu_bdf),
        "a clean re-attestation must not lift a quarantine either"
    );
    let probe = Tlp::memory_read(system.tvm_bdf(), layout::XPU_BAR_BASE, 8, 0x7B);
    let replies = system.fabric_mut().host_request(probe);
    assert!(
        replies.iter().all(|r| r.payload().is_empty()),
        "quarantined tenant must stay A1-denied after the power cycle"
    );
    assert!(
        system.run_workload(&weights, &prompt).is_err(),
        "quarantined tenant must not be served after the power cycle"
    );
}

#[test]
fn toctou_pcr_mutation_blocks_key_release_and_stays_attestable() {
    // The adversary lets attestation pass over clean measurements, then
    // patches the firmware measurement before key release (the classic
    // time-of-check/time-of-use window). Release recomputes the live
    // composite: the drift is caught, keys stay sealed, and the machine
    // rolls back to SecureBooted. Because PCRs are extend-only, the
    // tampering is *attestable* — re-attestation against the same golden
    // values fails — and only a power cycle with clean measurements
    // recovers the chain.
    let (mut bringup, mut env) = TrustFixture::deterministic(0x7A);
    bringup.apply(BringUpStep::SecureBoot, &mut env).unwrap();
    bringup.apply(BringUpStep::Attest, &mut env).unwrap();
    assert_eq!(bringup.state(), BringUpState::Attested);

    bringup.pcrs_mut().extend_assigned(PcrIndex::ScFirmware, b"evil patch");

    match bringup.apply(BringUpStep::ReleaseKeys, &mut env) {
        Err(BringUpError::MeasurementDrift { attested, live }) => {
            assert_ne!(attested, live, "the drift is evidence, not noise")
        }
        other => panic!("mutated PCR must block key release, got {other:?}"),
    }
    assert_eq!(bringup.state(), BringUpState::SecureBooted, "rollback on drift");
    assert!(bringup.master().is_none(), "no key material escapes a TOCTOU attempt");

    // The mutation burned the boot session: the verifier holds golden
    // values the live composite can no longer match.
    match bringup.apply(BringUpStep::Attest, &mut env) {
        Err(BringUpError::Attestation(AttestationError::PcrMismatch { .. })) => {}
        other => panic!("re-attestation over a mutated PCR must fail, got {other:?}"),
    }

    // Recovery demands a power cycle with clean measurements.
    bringup.reset(env.fresh_blade(0x7A));
    assert_eq!(bringup.state(), BringUpState::PowerOn);
    for step in BringUpStep::ALL {
        bringup.apply(step, &mut env).unwrap();
    }
    assert!(bringup.is_serving(), "a clean power cycle recovers the chain");
}

/// A strictly metadata-level observer: it records the size of each
/// staged data chunk and the virtual time it crossed the bus — exactly
/// what a bus adversary can always measure — and nothing else.
#[derive(Debug)]
struct PacingObserver {
    telemetry: Telemetry,
    trace: Rc<RefCell<Vec<(usize, bool, u64)>>>,
}

impl BusTap for PacingObserver {
    fn observe(&mut self, tlp: &Tlp, downstream: bool) {
        if tlp.payload().len() >= 64 {
            self.trace.borrow_mut().push((
                tlp.payload().len(),
                downstream,
                self.telemetry.now().as_picos(),
            ));
        }
    }
}

fn pacing_trace(weights: &[u8], prompt: &[u8]) -> Vec<(usize, bool, u64)> {
    let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    let trace = Rc::new(RefCell::new(Vec::new()));
    let observer = PacingObserver {
        telemetry: system.telemetry().clone(),
        trace: Rc::clone(&trace),
    };
    system.fabric_mut().add_tap(Box::new(observer));
    system.run_workload(weights, prompt).unwrap();
    let out = trace.borrow().clone();
    out
}

#[test]
fn staged_chunk_sizes_and_pacing_are_content_independent() {
    // The bounce-buffer side channel of §8.2: even though staging pages
    // are host-visible, what the host (or a bus snooper) can measure —
    // chunk sizes and timing — must depend only on the workload's
    // *shape*, never its content. Two runs over different secrets of
    // identical length must produce bit-identical (size, time) traces.
    let (weights_a, prompt_a) = secrets();
    let weights_b = b"weights-hidden!".repeat(700);
    let prompt_b = b"prompt-hidden!!".repeat(40);
    assert_eq!(weights_a.len(), weights_b.len());
    assert_eq!(prompt_a.len(), prompt_b.len());
    assert_ne!(weights_a, weights_b);

    let trace_a = pacing_trace(&weights_a, &prompt_a);
    let trace_b = pacing_trace(&weights_b, &prompt_b);
    assert!(
        trace_a.len() >= 5,
        "the observer must see real staged traffic, saw {} chunks",
        trace_a.len()
    );
    assert_eq!(
        trace_a, trace_b,
        "staged chunk sizes and pacing must not depend on secret content"
    );

    // A *different shape* does perturb the trace — the observer is not
    // blind, the channel is genuinely closed.
    let (short_w, short_p) = (b"W".repeat(1400), b"P".repeat(600));
    let trace_c = pacing_trace(&short_w, &short_p);
    assert_ne!(trace_a, trace_c, "shape changes must show up, proving the observer works");
}

#[test]
fn bringup_battery_is_deterministic_across_runs() {
    // The whole reset/replay scenario, run twice from scratch: the
    // trace digests must agree bit-for-bit. This is what lets CI diff
    // two runs of the battery against each other.
    let run = || {
        let (weights, prompt) = secrets();
        let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
        let snooper = BusAdversary::new();
        system.fabric_mut().add_tap(snooper.tap());
        system.run_workload(&weights, &prompt).unwrap();
        let (ctrl, _) = capture_session(&snooper, system.tvm_bdf());
        system.reset().expect("power cycle");
        system.complete_bringup().expect("fresh bring-up");
        for tlp in ctrl {
            system.fabric_mut().host_request(tlp);
        }
        system.run_workload(&weights, &prompt).unwrap();
        system.telemetry().digest_hex()
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "the bring-up battery must be deterministic");

    // Sibling dump file: tests run in parallel, so writing the main
    // CCAI_TRACE_DIGEST_OUT file would race the other dump tests.
    if let Ok(path) = std::env::var("CCAI_TRACE_DIGEST_OUT") {
        let dump = format!("bringup_battery={first}\n");
        std::fs::write(format!("{path}.bringup"), dump).expect("write digest dump");
    }
}
