//! Soak: many randomized confidential workloads through one platform,
//! with a snooper attached throughout. Sizes are drawn deterministically
//! so failures reproduce.

use ccai_core::system::{ConfidentialSystem, SystemMode};
use ccai_llm::chaos::ChaosPlan;
use ccai_llm::serve::{FleetConfig, FleetServer, TenantSpec};
use ccai_llm::{LlmSpec, ShardedFleet};
use ccai_pcie::{BusAdversary, FaultPlan};
use ccai_sim::{SimDuration, SimRng, SinkDigest};
use ccai_tvm::RetryPolicy;
use ccai_xpu::{CommandProcessor, XpuSpec};

#[test]
fn fifty_randomized_workloads_stay_clean() {
    let mut rng = SimRng::seed_from(0xCC_A1);
    let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    let adversary = BusAdversary::new();
    system.fabric_mut().add_tap(adversary.tap());

    for round in 0..50 {
        let w_len = rng.next_range(1, 60_000) as usize;
        let i_len = rng.next_range(1, 20_000) as usize;
        let weights = rng.bytes(w_len);
        let input = rng.bytes(i_len);
        let result = system
            .run_workload(&weights, &input)
            .unwrap_or_else(|e| panic!("round {round} ({w_len}/{i_len}): {e}"));
        assert_eq!(
            result,
            CommandProcessor::surrogate_inference(&weights, &input),
            "round {round}"
        );
        if w_len >= 24 {
            assert!(
                !adversary.log().leaked(&weights[..24]),
                "round {round}: weights prefix leaked"
            );
        }
        // Periodic task teardown exercises epoch rekeying mid-soak.
        if round % 17 == 16 {
            system.end_task();
        }
    }

    let sc = system.sc().expect("protected");
    assert_eq!(sc.alerts().len(), 0, "clean soak must raise no alerts");
    assert_eq!(sc.replays_blocked(), 0);
    assert!(system.adaptor_counters().bytes_encrypted > 500_000);
}

/// Fault-schedule soak: N randomized workloads × M seeded fault plans.
///
/// Every (workload, plan) pair must converge to the fault-free outcome —
/// identical inference result AND byte-identical post-run xPU memory —
/// within the retry policy's bound. Everything is derived from
/// `MASTER_SEED`, and every assertion message carries the plan seed, so a
/// failure reproduces with a single constant.
#[test]
fn seeded_fault_schedules_never_diverge() {
    const MASTER_SEED: u64 = 0xFA_17_5C_ED;
    const POLICY: RetryPolicy = RetryPolicy {
        max_attempts: 8,
        backoff_base: 2,
        backoff_unit: RetryPolicy::DEFAULT_BACKOFF_UNIT,
    };
    // 3 transfers per workload, at most (max_attempts - 1) retries each.
    const RETRY_BOUND: u64 = 3 * (POLICY.max_attempts as u64 - 1);

    let mut rng = SimRng::seed_from(MASTER_SEED);
    let workloads: Vec<(Vec<u8>, Vec<u8>)> = (0..3)
        .map(|_| {
            let w_len = rng.next_range(1_000, 24_000) as usize;
            let i_len = rng.next_range(100, 8_000) as usize;
            (rng.bytes(w_len), rng.bytes(i_len))
        })
        .collect();

    for (wi, (weights, input)) in workloads.iter().enumerate() {
        // Fault-free baseline for this workload shape.
        let mut baseline = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
        baseline.driver_mut().set_retry_policy(POLICY);
        let expected = baseline
            .run_workload(weights, input)
            .unwrap_or_else(|e| panic!("workload {wi}: fault-free baseline failed: {e}"));
        assert_eq!(expected, CommandProcessor::surrogate_inference(weights, input));
        let expected_digest = baseline.xpu_memory_digest();

        let seed = MASTER_SEED.wrapping_mul(wi as u64 + 1);
        let plans = [
            ("light", FaultPlan::light(seed)),
            ("drop", FaultPlan::drop_only(seed, 12)),
            ("corrupt", FaultPlan::corrupt_only(seed, 20)),
            ("dup+reorder", FaultPlan::duplicate_reorder(seed, 48)),
            ("delay", FaultPlan::delay_only(seed, 128)),
            ("flap", FaultPlan::flap_only(seed, 6, 2)),
        ];
        for (name, plan) in plans {
            let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
            system.driver_mut().set_retry_policy(POLICY);
            system.inject_faults(plan);
            let result = system.run_workload(weights, input).unwrap_or_else(|e| {
                panic!("workload {wi}, plan {name} (seed {seed:#x}): {e}")
            });
            assert_eq!(
                result, expected,
                "workload {wi}, plan {name} (seed {seed:#x}): result diverged"
            );
            assert_eq!(
                system.xpu_memory_digest(),
                expected_digest,
                "workload {wi}, plan {name} (seed {seed:#x}): xPU memory diverged"
            );
            let retries = system.driver().dma_retries();
            assert!(
                retries <= RETRY_BOUND,
                "workload {wi}, plan {name} (seed {seed:#x}): {retries} retries exceed bound {RETRY_BOUND}"
            );
        }
    }
}

/// Combined regime: one seeded run layers **data faults** (seeded fabric
/// fault plans on every real shard), **control-plane chaos** (crash →
/// attested replacement → live migration with rekey), and an analytic
/// fleet absorbing a seeded [`ChaosPlan`] with a streaming digest
/// consumer attached from the first event. Every workspace invariant
/// must hold simultaneously: golden surrogate outputs, the span+idle
/// picosecond identity, counter/report mirrors, and a bit-identical
/// streaming digest across a replay.
#[test]
fn combined_regime_holds_every_invariant_in_one_seeded_run() {
    const MASTER_SEED: u64 = 0xFA_17_5C_ED;

    // --- analytic layer: seeded chaos plan + streaming digest ----------
    let run = || {
        let tenants: Vec<TenantSpec> = (0..4)
            .map(|i| TenantSpec::new(300 + i, SimDuration::from_millis(40), 32, 96))
            .collect();
        let cfg = FleetConfig {
            seed: MASTER_SEED,
            shards: 3,
            max_batch: 8,
            admission_backlog: 2048,
            rate_limiting: false,
            model: LlmSpec::opt_1_3b(),
            device: XpuSpec::a100(),
            tenants,
        };
        let tags: Vec<u32> = (300..304).collect();
        let mut fleet = FleetServer::new(cfg);
        let sink = SinkDigest::install(fleet.telemetry());
        fleet.set_chaos_plan(ChaosPlan::seeded(
            MASTER_SEED ^ 0xC4A0,
            &[0, 1, 2],
            &tags,
            SimDuration::from_secs(3),
            6,
        ));
        fleet.generate(600);
        fleet.drain();
        (fleet, sink)
    };
    let (fleet, sink) = run();
    let report = fleet.report();
    let t = fleet.telemetry();
    assert!(report.chaos_events > 0, "the seeded plan must fire");
    assert_eq!(
        (t.span_total() + t.idle_total()).as_picos(),
        t.now().as_picos(),
        "span+idle identity must survive the combined regime"
    );
    assert_eq!(t.counter("fleet.chaos.requeued"), report.requeued);
    assert_eq!(t.counter("fleet.migrate.count"), report.migrations);
    for tenant in &report.tenants {
        assert_eq!(
            tenant.generated,
            tenant.served
                + tenant.shed_rate_limited
                + tenant.shed_queue_full
                + tenant.shed_quarantined,
            "tenant {} leaked requests",
            tenant.tenant,
        );
    }
    assert!(sink.events_seen() > 0, "the sink must have folded the stream");
    assert_eq!(sink.digest(), t.digest(), "streaming digest mirrors the hub");
    let (replay, replay_sink) = run();
    assert_eq!(
        replay_sink.digest(),
        sink.digest(),
        "combined regime must replay bit-identically"
    );
    assert_eq!(replay.report().to_json(), report.to_json());

    // --- real layer: data faults + control-plane chaos ------------------
    const POLICY: RetryPolicy = RetryPolicy {
        max_attempts: 8,
        backoff_base: 2,
        backoff_unit: RetryPolicy::DEFAULT_BACKOFF_UNIT,
    };
    let mut rng = SimRng::seed_from(MASTER_SEED);
    let weights = rng.bytes(18_000);
    let mut real = ShardedFleet::deploy(XpuSpec::a100(), SystemMode::CcAi, &weights, 3)
        .expect("sharded fleet deploys");
    for id in real.replica_ids() {
        let system = real.shard_system_mut(id);
        system.driver_mut().set_retry_policy(POLICY);
        system.inject_faults(FaultPlan::light(MASTER_SEED.wrapping_add(u64::from(id))));
    }
    let tenants = [3u32, 11, 27, 50];
    for &tenant in &tenants {
        let prompt = rng.bytes(900);
        let out = real
            .serve(tenant, &prompt)
            .unwrap_or_else(|e| panic!("tenant {tenant} under data faults: {e}"));
        assert_eq!(
            out,
            CommandProcessor::surrogate_inference(&weights, &prompt),
            "tenant {tenant} diverged under data faults"
        );
    }
    real.crash_replica(1).expect("crash mid-soak");
    let fresh = real.admit_replacement().expect("replacement re-attests");
    let system = real.shard_system_mut(fresh);
    system.driver_mut().set_retry_policy(POLICY);
    system.inject_faults(FaultPlan::light(MASTER_SEED.wrapping_add(u64::from(fresh))));
    real.migrate_tenant(tenants[1], fresh).expect("live migration mid-soak");
    for &tenant in &tenants {
        let prompt = rng.bytes(700);
        let out = real.serve(tenant, &prompt).unwrap_or_else(|e| {
            panic!("tenant {tenant} after failover + migration: {e}")
        });
        assert_eq!(
            out,
            CommandProcessor::surrogate_inference(&weights, &prompt),
            "tenant {tenant} diverged after failover + migration"
        );
    }
    assert!(
        real.quarantined_tenants().is_empty(),
        "recoverable chaos must never trip containment"
    );
}

#[test]
fn task_teardown_wipes_the_xpu_environment() {
    // §4.2 environment guard: after end_task, nothing of the previous
    // tenant's model or results remains readable on the device.
    let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    let secret_model = b"residual-model-secret".repeat(100);
    system.run_workload(&secret_model, b"query").unwrap();
    system.end_task();

    // Read the (former) weights region through the aperture as the
    // authorized TVM — an A4-classified read that reaches the device.
    use ccai_core::system::layout;
    let bar1 = layout::XPU_BAR_BASE + (1 << 28);
    let tvm = system.tvm_bdf();
    let replies = system.fabric_mut().host_request(ccai_pcie::Tlp::memory_read(
        tvm,
        bar1 + layout::DEV_WEIGHTS,
        256,
        0x61,
    ));
    let data = replies
        .iter()
        .find(|r| !r.payload().is_empty())
        .map(|r| r.payload().to_vec())
        .unwrap_or_default();
    assert!(
        data.iter().all(|&b| b == 0),
        "device memory must be zeroed after the environment reset"
    );
}
