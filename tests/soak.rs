//! Soak: many randomized confidential workloads through one platform,
//! with a snooper attached throughout. Sizes are drawn deterministically
//! so failures reproduce.

use ccai_core::system::{ConfidentialSystem, SystemMode};
use ccai_pcie::BusAdversary;
use ccai_sim::SimRng;
use ccai_xpu::{CommandProcessor, XpuSpec};

#[test]
fn fifty_randomized_workloads_stay_clean() {
    let mut rng = SimRng::seed_from(0xCC_A1);
    let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    let adversary = BusAdversary::new();
    system.fabric_mut().add_tap(adversary.tap());

    for round in 0..50 {
        let w_len = rng.next_range(1, 60_000) as usize;
        let i_len = rng.next_range(1, 20_000) as usize;
        let weights = rng.bytes(w_len);
        let input = rng.bytes(i_len);
        let result = system
            .run_workload(&weights, &input)
            .unwrap_or_else(|e| panic!("round {round} ({w_len}/{i_len}): {e}"));
        assert_eq!(
            result,
            CommandProcessor::surrogate_inference(&weights, &input),
            "round {round}"
        );
        if w_len >= 24 {
            assert!(
                !adversary.log().leaked(&weights[..24]),
                "round {round}: weights prefix leaked"
            );
        }
        // Periodic task teardown exercises epoch rekeying mid-soak.
        if round % 17 == 16 {
            system.end_task();
        }
    }

    let sc = system.sc().expect("protected");
    assert_eq!(sc.alerts().len(), 0, "clean soak must raise no alerts");
    assert_eq!(sc.replays_blocked(), 0);
    assert!(system.adaptor_counters().bytes_encrypted > 500_000);
}

#[test]
fn task_teardown_wipes_the_xpu_environment() {
    // §4.2 environment guard: after end_task, nothing of the previous
    // tenant's model or results remains readable on the device.
    let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    let secret_model = b"residual-model-secret".repeat(100);
    system.run_workload(&secret_model, b"query").unwrap();
    system.end_task();

    // Read the (former) weights region through the aperture as the
    // authorized TVM — an A4-classified read that reaches the device.
    use ccai_core::system::layout;
    let bar1 = layout::XPU_BAR_BASE + (1 << 28);
    let tvm = system.tvm_bdf();
    let replies = system.fabric_mut().host_request(ccai_pcie::Tlp::memory_read(
        tvm,
        bar1 + layout::DEV_WEIGHTS,
        256,
        0x61,
    ));
    let data = replies
        .iter()
        .find(|r| !r.payload().is_empty())
        .map(|r| r.payload().to_vec())
        .unwrap_or_default();
    assert!(
        data.iter().all(|&b| b == 0),
        "device memory must be zeroed after the environment reset"
    );
}
