//! Soak: many randomized confidential workloads through one platform,
//! with a snooper attached throughout. Sizes are drawn deterministically
//! so failures reproduce.

use ccai_core::system::{ConfidentialSystem, SystemMode};
use ccai_pcie::{BusAdversary, FaultPlan};
use ccai_sim::SimRng;
use ccai_tvm::RetryPolicy;
use ccai_xpu::{CommandProcessor, XpuSpec};

#[test]
fn fifty_randomized_workloads_stay_clean() {
    let mut rng = SimRng::seed_from(0xCC_A1);
    let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    let adversary = BusAdversary::new();
    system.fabric_mut().add_tap(adversary.tap());

    for round in 0..50 {
        let w_len = rng.next_range(1, 60_000) as usize;
        let i_len = rng.next_range(1, 20_000) as usize;
        let weights = rng.bytes(w_len);
        let input = rng.bytes(i_len);
        let result = system
            .run_workload(&weights, &input)
            .unwrap_or_else(|e| panic!("round {round} ({w_len}/{i_len}): {e}"));
        assert_eq!(
            result,
            CommandProcessor::surrogate_inference(&weights, &input),
            "round {round}"
        );
        if w_len >= 24 {
            assert!(
                !adversary.log().leaked(&weights[..24]),
                "round {round}: weights prefix leaked"
            );
        }
        // Periodic task teardown exercises epoch rekeying mid-soak.
        if round % 17 == 16 {
            system.end_task();
        }
    }

    let sc = system.sc().expect("protected");
    assert_eq!(sc.alerts().len(), 0, "clean soak must raise no alerts");
    assert_eq!(sc.replays_blocked(), 0);
    assert!(system.adaptor_counters().bytes_encrypted > 500_000);
}

/// Fault-schedule soak: N randomized workloads × M seeded fault plans.
///
/// Every (workload, plan) pair must converge to the fault-free outcome —
/// identical inference result AND byte-identical post-run xPU memory —
/// within the retry policy's bound. Everything is derived from
/// `MASTER_SEED`, and every assertion message carries the plan seed, so a
/// failure reproduces with a single constant.
#[test]
fn seeded_fault_schedules_never_diverge() {
    const MASTER_SEED: u64 = 0xFA_17_5C_ED;
    const POLICY: RetryPolicy = RetryPolicy {
        max_attempts: 8,
        backoff_base: 2,
        backoff_unit: RetryPolicy::DEFAULT_BACKOFF_UNIT,
    };
    // 3 transfers per workload, at most (max_attempts - 1) retries each.
    const RETRY_BOUND: u64 = 3 * (POLICY.max_attempts as u64 - 1);

    let mut rng = SimRng::seed_from(MASTER_SEED);
    let workloads: Vec<(Vec<u8>, Vec<u8>)> = (0..3)
        .map(|_| {
            let w_len = rng.next_range(1_000, 24_000) as usize;
            let i_len = rng.next_range(100, 8_000) as usize;
            (rng.bytes(w_len), rng.bytes(i_len))
        })
        .collect();

    for (wi, (weights, input)) in workloads.iter().enumerate() {
        // Fault-free baseline for this workload shape.
        let mut baseline = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
        baseline.driver_mut().set_retry_policy(POLICY);
        let expected = baseline
            .run_workload(weights, input)
            .unwrap_or_else(|e| panic!("workload {wi}: fault-free baseline failed: {e}"));
        assert_eq!(expected, CommandProcessor::surrogate_inference(weights, input));
        let expected_digest = baseline.xpu_memory_digest();

        let seed = MASTER_SEED.wrapping_mul(wi as u64 + 1);
        let plans = [
            ("light", FaultPlan::light(seed)),
            ("drop", FaultPlan::drop_only(seed, 12)),
            ("corrupt", FaultPlan::corrupt_only(seed, 20)),
            ("dup+reorder", FaultPlan::duplicate_reorder(seed, 48)),
            ("delay", FaultPlan::delay_only(seed, 128)),
            ("flap", FaultPlan::flap_only(seed, 6, 2)),
        ];
        for (name, plan) in plans {
            let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
            system.driver_mut().set_retry_policy(POLICY);
            system.inject_faults(plan);
            let result = system.run_workload(weights, input).unwrap_or_else(|e| {
                panic!("workload {wi}, plan {name} (seed {seed:#x}): {e}")
            });
            assert_eq!(
                result, expected,
                "workload {wi}, plan {name} (seed {seed:#x}): result diverged"
            );
            assert_eq!(
                system.xpu_memory_digest(),
                expected_digest,
                "workload {wi}, plan {name} (seed {seed:#x}): xPU memory diverged"
            );
            let retries = system.driver().dma_retries();
            assert!(
                retries <= RETRY_BOUND,
                "workload {wi}, plan {name} (seed {seed:#x}): {retries} retries exceed bound {RETRY_BOUND}"
            );
        }
    }
}

#[test]
fn task_teardown_wipes_the_xpu_environment() {
    // §4.2 environment guard: after end_task, nothing of the previous
    // tenant's model or results remains readable on the device.
    let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    let secret_model = b"residual-model-secret".repeat(100);
    system.run_workload(&secret_model, b"query").unwrap();
    system.end_task();

    // Read the (former) weights region through the aperture as the
    // authorized TVM — an A4-classified read that reaches the device.
    use ccai_core::system::layout;
    let bar1 = layout::XPU_BAR_BASE + (1 << 28);
    let tvm = system.tvm_bdf();
    let replies = system.fabric_mut().host_request(ccai_pcie::Tlp::memory_read(
        tvm,
        bar1 + layout::DEV_WEIGHTS,
        256,
        0x61,
    ));
    let data = replies
        .iter()
        .find(|r| !r.payload().is_empty())
        .map(|r| r.payload().to_vec())
        .unwrap_or_default();
    assert!(
        data.iter().all(|&b| b == 0),
        "device memory must be zeroed after the environment reset"
    );
}
