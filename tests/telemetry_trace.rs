//! Golden-trace tests for the telemetry subsystem.
//!
//! The event stream is stamped exclusively with the hub's sim clock and
//! every input to a workload run is deterministic, so the running trace
//! digest is a replayable fingerprint of *everything observable* on the
//! TLP path: the same seed must produce bit-identical traces, with and
//! without an armed fault plan.
//!
//! When `CCAI_TRACE_DIGEST_OUT` names a file, the golden test also dumps
//! the digests it computed so CI can diff two consecutive runs.

use ccai_core::{ConfidentialSystem, SystemMode, TelemetryEvent};
use ccai_pcie::FaultPlan;
use ccai_tvm::RetryPolicy;
use ccai_xpu::XpuSpec;

const WEIGHTS_LEN: usize = 20_000;
const INPUT_LEN: usize = 6_000;

fn workload() -> (Vec<u8>, Vec<u8>) {
    let weights: Vec<u8> = (0..WEIGHTS_LEN).map(|i| (i * 131 % 251) as u8).collect();
    let input: Vec<u8> = (0..INPUT_LEN).map(|i| (i * 17 % 241) as u8).collect();
    (weights, input)
}

/// Runs one fixed-seed workload and returns (digest hex, event trace).
fn run_traced(plan: Option<FaultPlan>) -> (String, Vec<TelemetryEvent>) {
    run_traced_with_pump(plan, true)
}

/// Like [`run_traced`], but selecting between the batched SC pump (the
/// default) and the legacy per-TLP pump. Also returns the count of SC
/// filter batches so tests can prove which pump actually ran.
fn run_traced_with_pump(
    plan: Option<FaultPlan>,
    batching: bool,
) -> (String, Vec<TelemetryEvent>) {
    let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    system.fabric_mut().set_pump_batching(batching);
    system
        .driver_mut()
        .set_retry_policy(RetryPolicy { max_attempts: 6, backoff_base: 2, ..Default::default() });
    if let Some(plan) = plan {
        system.inject_faults(plan);
    }
    let (weights, input) = workload();
    system.run_workload(&weights, &input).expect("fixed-seed workload succeeds");
    let telemetry = system.telemetry();
    let batches = telemetry.counter("sc.filter_batches");
    if batching {
        assert!(batches > 0, "batched pump must record SC filter batches");
        assert!(
            telemetry.histogram("sc.batch_size").is_some_and(|h| h.total() == batches),
            "every batch must land one sc.batch_size histogram sample"
        );
    } else {
        assert_eq!(batches, 0, "legacy per-TLP pump must not record batches");
    }
    (telemetry.digest_hex(), telemetry.events())
}

fn faulted_plan() -> FaultPlan {
    FaultPlan::corrupt_only(5, 96)
}

#[test]
fn same_seed_produces_identical_trace() {
    let (digest_a, events_a) = run_traced(None);
    let (digest_b, events_b) = run_traced(None);
    assert_eq!(digest_a, digest_b, "fault-free trace must replay bit-identically");
    assert_eq!(events_a, events_b, "the full event sequence must replay");
    assert!(!events_a.is_empty(), "a workload run must leave a trace");

    let (faulted_a, f_events_a) = run_traced(Some(faulted_plan()));
    let (faulted_b, f_events_b) = run_traced(Some(faulted_plan()));
    assert_eq!(faulted_a, faulted_b, "same fault seed, same trace digest");
    assert_eq!(f_events_a, f_events_b);
    assert_ne!(
        digest_a, faulted_a,
        "injected faults must be visible in the trace digest"
    );

    // CI hook: dump the digests so two consecutive suite runs can be
    // diffed without parsing test output.
    if let Ok(path) = std::env::var("CCAI_TRACE_DIGEST_OUT") {
        let dump = format!("fault_free={digest_a}\nfaulted={faulted_a}\n");
        std::fs::write(&path, dump).expect("write digest dump");
    }
}

/// The §5 metadata-batching refactor must be invisible to the golden
/// trace: batch boundaries surface only as counters and histogram
/// samples, which never feed the digest or the sim clock, so the event
/// stream of the batched pump is bit-identical to the legacy per-TLP
/// pump — with and without injected faults.
#[test]
fn batched_pump_replays_the_per_tlp_trace_bit_identically() {
    for faulted in [false, true] {
        let plan = || faulted.then(faulted_plan);
        let (batched_digest, batched_events) = run_traced_with_pump(plan(), true);
        let (legacy_digest, legacy_events) = run_traced_with_pump(plan(), false);
        assert_eq!(
            batched_digest, legacy_digest,
            "batching changed the trace digest (faulted={faulted})"
        );
        assert_eq!(
            batched_events, legacy_events,
            "batching changed the event stream (faulted={faulted})"
        );
    }
}

#[test]
fn fault_events_appear_in_the_trace() {
    let (_, events) = run_traced(Some(faulted_plan()));
    assert!(
        events.iter().any(|e| e.kind.starts_with("fault.")),
        "armed injector must leave fault events in the trace"
    );
    assert!(
        events.iter().any(|e| e.kind == "adaptor.retry"),
        "corruption must surface as adaptor retries"
    );
    assert!(
        events.iter().any(|e| e.kind == "driver.backoff"),
        "retries must go through the sim-time backoff path"
    );
    assert!(
        events.iter().any(|e| e.kind == "sc.crypt_fail"),
        "the SC must record the corrupted chunks"
    );
}

#[test]
fn trace_is_ordered_and_stamped_monotonically() {
    let (_, events) = run_traced(Some(faulted_plan()));
    for pair in events.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "sequence numbers strictly increase");
        assert!(pair[0].at <= pair[1].at, "timestamps never go backwards");
    }
}

#[test]
fn snapshot_serializes_with_the_pinned_schema() {
    // The schema name is pinned here — everywhere else (the exporter,
    // both bench binaries, this test's key check below) references the
    // one constant, so a rename shows up exactly once: in this assert.
    assert_eq!(ccai_core::telemetry::SNAPSHOT_SCHEMA, "ccai.telemetry.v2");
    let mut system = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    let (weights, input) = workload();
    system.run_workload(&weights, &input).expect("workload");
    let json = system.telemetry_snapshot().to_json();
    let schema_key = format!("\"schema\": \"{}\"", ccai_core::telemetry::SNAPSHOT_SCHEMA);
    for key in [
        schema_key.as_str(),
        "\"now_picos\"",
        "\"trace_digest\"",
        "\"events_recorded\"",
        "\"events_dropped\"",
        "\"counters\"",
        "\"hops\"",
        "\"span_total_picos\"",
        "\"idle_total_picos\"",
        "\"idle_by_tenant\"",
    ] {
        assert!(json.contains(key), "snapshot JSON missing {key}: {json}");
    }
    for hop in ["adaptor_stage", "adaptor_crypt", "sc_filter", "sc_crypt", "link", "dma"] {
        assert!(json.contains(&format!("\"hop\": \"{hop}\"")), "snapshot missing hop {hop}");
    }
}
