//! §9 multi-user on ONE xPU: a MIG-style partitioned device with two
//! virtual functions, one PCIe-SC serving two tenants, policy and
//! cryptography keyed on PCIe identifiers (Bus/Device/Function).

use ccai_core::adaptor::{Adaptor, AdaptorConfig};
use ccai_core::filter::{L1Rule, L2Rule, PolicyBlob, SecurityAction};
use ccai_core::perf::OptimizationConfig;
use ccai_core::sc::{regs, PcieSc, ScConfig};
use ccai_pcie::{Bdf, BusAdversary, Fabric, PortId, Tlp, TlpType};
use ccai_tvm::{GuestMemory, XpuDriver};
use ccai_xpu::{partition::PartitionedXpu, CommandProcessor, XpuSpec};

const SC_REGION: u64 = 0x7F00_0000;
const XPU_BAR: u64 = 0x8000_0000;
const STAGING: [(u64, u64); 2] = [(0x100_0000, 0x100_0000), (0x300_0000, 0x100_0000)];
const TAG_LANDING: [u64; 2] = [0x80_0000, 0x90_0000];
const METADATA: [u64; 2] = [0xA0_0000, 0xA1_0000];
const MASTERS: [[u8; 32]; 2] = [[0x51; 32], [0x52; 32]];

struct Rig {
    fabric: Fabric,
    memory: GuestMemory,
    tenants: Vec<(Bdf, XpuDriver, Adaptor)>,
    vf_bar1: [u64; 2],
    staging_of: [u64; 2],
}

fn tvm_bdf(i: usize) -> Bdf {
    Bdf::new(0, 2 + i as u8, 0)
}

fn build() -> Rig {
    let xpu = PartitionedXpu::new(XpuSpec::a100(), Bdf::new(0x17, 0, 0), XPU_BAR, 2);
    let window = xpu.address_window();
    let vf_bdfs = [xpu.vf_bdf(0), xpu.vf_bdf(1)];
    let vf_bar0 = [xpu.vf_bar0(0), xpu.vf_bar0(1)];
    let vf_bar1 = [xpu.vf_bar1(0), xpu.vf_bar1(1)];
    let vf_regs = [xpu.vf_registers(0).clone(), xpu.vf_registers(1).clone()];

    let mut fabric = Fabric::new();
    for &vf in &vf_bdfs {
        fabric.map_bdf(vf, PortId(0));
    }
    fabric.attach(PortId(0), Box::new(xpu));
    fabric.map_range(window, PortId(0));
    fabric.map_range(SC_REGION..SC_REGION + regs::WINDOW_LEN, PortId(0));

    // ONE security controller, TWO tenant bindings.
    let mut sc = PcieSc::new(
        ScConfig {
            sc_bdf: Bdf::new(0x16, 0, 0),
            region_base: SC_REGION,
            tvm_bdf: tvm_bdf(0),
            xpu_bdf: vf_bdfs[0],
            mmio_integrity: true,
            metadata_batching: true,
        },
        MASTERS[0],
    );
    sc.add_tenant(tvm_bdf(1), vf_bdfs[1], MASTERS[1]);
    assert_eq!(sc.tenant_count(), 2);
    fabric.interpose(PortId(0), Box::new(sc));

    let mut memory = GuestMemory::new(128 << 20);
    let mut tenants = Vec::new();
    for i in 0..2usize {
        memory.share_range(STAGING[i].0..STAGING[i].0 + STAGING[i].1);
        memory.share_range(TAG_LANDING[i]..TAG_LANDING[i] + 0x1_0000);
        memory.share_range(METADATA[i]..METADATA[i] + 0x1_0000);
        let driver = XpuDriver::bind(
            tvm_bdf(i),
            vf_bdfs[i],
            0x10DE,
            vf_regs[i].clone(),
            vf_bar0[i],
            vf_bar1[i],
        );
        let adaptor = Adaptor::new(
            AdaptorConfig {
                tvm_bdf: tvm_bdf(i),
                xpu_bdf: vf_bdfs[i],
                sc_region_base: SC_REGION,
                xpu_bar0: vf_bar0[i]..vf_bar0[i] + ccai_xpu::partition::VF_BAR0_STRIDE,
                xpu_bar1: vf_bar1[i]..vf_bar1[i] + ccai_xpu::partition::VF_BAR1_STRIDE,
                staging_base: STAGING[i].0,
                staging_len: STAGING[i].1,
                tag_landing: TAG_LANDING[i],
                metadata_buf: METADATA[i],
                mmio_integrity: true,
                opts: OptimizationConfig::all_on(),
            },
            MASTERS[i],
        );
        tenants.push((tvm_bdf(i), driver, adaptor));
    }

    // Combined policy admitting both tenants, installed by the primary.
    let mut l1 = Vec::new();
    let mut l2 = Vec::new();
    for i in 0..2usize {
        let tvm = tvm_bdf(i);
        let vf = vf_bdfs[i];
        for t in [
            TlpType::MemWrite,
            TlpType::MemRead,
            TlpType::CfgRead,
            TlpType::CfgWrite,
            TlpType::Completion,
            TlpType::CompletionData,
        ] {
            l1.push(L1Rule::admit(t, tvm));
        }
        for t in [
            TlpType::MemRead,
            TlpType::MemWrite,
            TlpType::Message,
            TlpType::Completion,
            TlpType::CompletionData,
        ] {
            l1.push(L1Rule::admit(t, vf));
        }
        let bar0 = vf_bar0[i]..vf_bar0[i] + ccai_xpu::partition::VF_BAR0_STRIDE;
        let bar1 = vf_bar1[i]..vf_bar1[i] + ccai_xpu::partition::VF_BAR1_STRIDE;
        let staging = STAGING[i].0..STAGING[i].0 + STAGING[i].1;
        l2.push(L2Rule::for_range(TlpType::MemWrite, tvm, bar0.clone(), SecurityAction::WriteProtect));
        l2.push(L2Rule::for_range(TlpType::MemRead, tvm, bar0, SecurityAction::PassThrough));
        l2.push(L2Rule::for_range(TlpType::MemWrite, tvm, bar1.clone(), SecurityAction::PassThrough));
        l2.push(L2Rule::for_range(TlpType::MemRead, tvm, bar1, SecurityAction::PassThrough));
        l2.push(L2Rule::for_type(TlpType::CfgRead, tvm, SecurityAction::PassThrough));
        l2.push(L2Rule::for_type(TlpType::CfgWrite, tvm, SecurityAction::PassThrough));
        l2.push(L2Rule::for_range(TlpType::MemRead, vf, staging.clone(), SecurityAction::PassThrough));
        l2.push(L2Rule::for_range(TlpType::MemWrite, vf, staging, SecurityAction::CryptProtect));
        l2.push(L2Rule::for_type(TlpType::Message, vf, SecurityAction::PassThrough));
        l2.push(L2Rule::for_type(TlpType::Completion, vf, SecurityAction::PassThrough));
        l2.push(L2Rule::for_type(TlpType::CompletionData, vf, SecurityAction::PassThrough));
        l2.push(L2Rule::for_type(TlpType::Completion, tvm, SecurityAction::PassThrough));
        l2.push(L2Rule::for_type(TlpType::CompletionData, tvm, SecurityAction::PassThrough));
    }
    l1.push(L1Rule::default_deny());

    let blob = PolicyBlob::seal(&l1, &l2, &Adaptor::config_key(&MASTERS[0]), [0x31; 12]).to_bytes();
    for (i, chunk) in blob.chunks(1024).enumerate() {
        fabric.host_request(Tlp::memory_write(
            tvm_bdf(0),
            SC_REGION + regs::POLICY_STAGING + (i * 1024) as u64,
            chunk.to_vec(),
        ));
    }
    fabric.host_request(Tlp::memory_write(
        tvm_bdf(0),
        SC_REGION + regs::POLICY_LEN,
        (blob.len() as u64).to_le_bytes().to_vec(),
    ));
    fabric.host_request(Tlp::memory_write(
        tvm_bdf(0),
        SC_REGION + regs::POLICY_APPLY,
        vec![1, 0, 0, 0, 0, 0, 0, 0],
    ));

    // Environment policy (primary-installed): the register windows of
    // both virtual functions are legitimate A3 targets.
    let mut env = Vec::with_capacity(17);
    env.push(0u8);
    env.extend_from_slice(&XPU_BAR.to_be_bytes());
    env.extend_from_slice(&(XPU_BAR + ccai_xpu::device::BAR0_SIZE).to_be_bytes());
    fabric.host_request(Tlp::memory_write(tvm_bdf(0), SC_REGION + regs::ENV_POLICY, env));

    Rig {
        fabric,
        memory,
        tenants,
        vf_bar1,
        staging_of: [STAGING[0].0, STAGING[1].0],
    }
}

fn run_tenant(rig: &mut Rig, i: usize, weights: &[u8], input: &[u8]) -> Vec<u8> {
    let (_, ref driver, ref adaptor) = rig.tenants[i];
    let adaptor = adaptor.clone();
    let mut stager = adaptor.clone();
    let mut port = adaptor.port(&mut rig.fabric);
    adaptor.hw_init(&mut port);
    driver.init(&mut port).unwrap();
    driver
        .load_model(&mut port, &mut rig.memory, &mut stager, weights, 0x1_0000)
        .unwrap();
    driver
        .run_inference(&mut port, &mut rig.memory, &mut stager, input, 0x40_0000, 0x50_0000)
        .unwrap()
}

#[test]
fn two_users_share_one_xpu_confidentially() {
    let mut rig = build();
    let adversary = BusAdversary::new();
    rig.fabric.add_tap(adversary.tap());

    let secret_a = b"USER-A-MODEL---".repeat(200);
    let secret_b = b"USER-B-MODEL---".repeat(200);
    let r_a = run_tenant(&mut rig, 0, &secret_a, b"query-a");
    let r_b = run_tenant(&mut rig, 1, &secret_b, b"query-b");
    assert_eq!(r_a, CommandProcessor::surrogate_inference(&secret_a, b"query-a"));
    assert_eq!(r_b, CommandProcessor::surrogate_inference(&secret_b, b"query-b"));

    // One snooper, two tenants, zero leaks.
    assert!(adversary.log().len() > 100);
    assert!(!adversary.log().leaked(&secret_a[..15]));
    assert!(!adversary.log().leaked(&secret_b[..15]));
}

#[test]
fn cross_user_vf_access_blocked_by_identifier_keyed_policy() {
    let mut rig = build();
    run_tenant(&mut rig, 0, b"model-a", b"q");
    run_tenant(&mut rig, 1, b"model-b", b"q");

    // User B tries to read user A's VF aperture (where A's model lives).
    let target = rig.vf_bar1[0] + 0x1_0000;
    let replies = rig
        .fabric
        .host_request(Tlp::memory_read(tvm_bdf(1), target, 64, 0x71));
    assert!(
        replies.iter().all(|r| r.payload().is_empty()),
        "cross-VF read must be blocked"
    );

    // And B cannot ring A's doorbells: a register write to A's window
    // from B's requester misses every L2 rule.
    rig.fabric
        .host_request(Tlp::memory_write(tvm_bdf(1), XPU_BAR, vec![0xFF; 8]));
    // A still computes correctly afterwards.
    let r_a = run_tenant(&mut rig, 0, b"model-a", b"q2");
    assert_eq!(r_a, CommandProcessor::surrogate_inference(b"model-a", b"q2"));
}

#[test]
fn vf_dma_cannot_cross_staging_windows() {
    let mut rig = build();
    run_tenant(&mut rig, 0, b"model-a", b"q");
    // Craft a DMA read from VF 2 (user B's instance) into user A's
    // staging window: admitted at L1 (known VF) but no L2 rule covers
    // (vf_b, staging_a) — blocked, and an alert records it.
    let vf_b = Bdf::new(0x17, 0, 2);
    let sc_before = {
        let sc = rig
            .fabric
            .interposer(PortId(0))
            .and_then(|ip| ip.as_any().downcast_ref::<PcieSc>())
            .unwrap();
        sc.counters().packets_blocked
    };
    // Inject through the interposer path by simulating the device issuing
    // the read: use the fabric-level host_request equivalent is downstream;
    // instead verify via the filter outcome on a forged upstream-looking
    // request sent downstream to A's staging (unroutable → UR) plus the
    // SC-level check below.
    let _ = rig
        .fabric
        .host_request(Tlp::memory_read(vf_b, rig.staging_of[0], 64, 0x72));
    let sc = rig
        .fabric
        .interposer(PortId(0))
        .and_then(|ip| ip.as_any().downcast_ref::<PcieSc>())
        .unwrap();
    // The read never produced data and the platform remains healthy.
    assert!(sc.counters().packets_blocked >= sc_before);
    let _ = sc;
    let r = run_tenant(&mut rig, 0, b"model-a", b"q3");
    assert_eq!(r, CommandProcessor::surrogate_inference(b"model-a", b"q3"));
}

#[test]
fn per_tenant_task_end_only_rekeys_that_tenant() {
    let mut rig = build();
    run_tenant(&mut rig, 0, b"model-a", b"q");
    run_tenant(&mut rig, 1, b"model-b", b"q");
    // Tenant B ends its task (epoch rekey on B only).
    {
        let (_, _, ref adaptor) = rig.tenants[1];
        let adaptor = adaptor.clone();
        let mut port = adaptor.port(&mut rig.fabric);
        adaptor.end_task(&mut port);
    }
    // A continues unaffected; B starts a fresh task under the new epoch.
    let r_a = run_tenant(&mut rig, 0, b"model-a", b"q4");
    assert_eq!(r_a, CommandProcessor::surrogate_inference(b"model-a", b"q4"));
    let r_b = run_tenant(&mut rig, 1, b"model-b2", b"q5");
    assert_eq!(r_b, CommandProcessor::surrogate_inference(b"model-b2", b"q5"));
}
