//! §9 "PCIe-SC for multiple xPUs and users": two tenants, two xPUs, one
//! fabric. Each xPU carries its own security-controller instance (the
//! deployed configuration: "each PCIe-SC serves a single xPU that is
//! owned by a TVM"); policies are keyed by PCIe identifiers, so tenant
//! isolation falls out of the packet filter plus per-tenant key domains.

use ccai_core::adaptor::{Adaptor, AdaptorConfig};
use ccai_core::perf::OptimizationConfig;
use ccai_core::sc::{regs, PcieSc, ScConfig};
use ccai_pcie::{Bdf, BusAdversary, Fabric, PortId, Tlp};
use ccai_tvm::{GuestMemory, XpuDriver};
use ccai_xpu::{CommandProcessor, Xpu, XpuSpec};

struct Tenant {
    bdf: Bdf,
    driver: XpuDriver,
    adaptor: Adaptor,
    master: [u8; 32],
}

struct TwoTenantRig {
    fabric: Fabric,
    memory: GuestMemory,
    tenants: Vec<Tenant>,
    xpu_bar1: Vec<u64>,
}

const SC_REGIONS: [u64; 2] = [0x7F00_0000, 0x7E00_0000];
const XPU_BARS: [u64; 2] = [0x8000_0000, 0xC000_0000];
const STAGING: [(u64, u64); 2] = [(0x100_0000, 0x100_0000), (0x300_0000, 0x100_0000)];
const TAG_LANDING: [u64; 2] = [0x80_0000, 0x90_0000];
const METADATA: [u64; 2] = [0xA0_0000, 0xA1_0000];

fn build_rig() -> TwoTenantRig {
    let mut fabric = Fabric::new();
    let mut memory = GuestMemory::new(128 << 20);
    let mut tenants = Vec::new();
    let mut xpu_bar1 = Vec::new();

    for i in 0..2usize {
        let tvm_bdf = Bdf::new(0, 2 + i as u8, 0);
        let xpu_bdf = Bdf::new(0x17 + i as u8, 0, 0);
        let sc_bdf = Bdf::new(0x15 - i as u8, 0, 0);

        let xpu = Xpu::new(XpuSpec::a100(), xpu_bdf, XPU_BARS[i]);
        let driver = XpuDriver::for_xpu(tvm_bdf, &xpu);
        let window = xpu.address_window();
        let bar0 = xpu.bar0_base()..xpu.bar0_base() + ccai_xpu::device::BAR0_SIZE;
        let bar1 = xpu.bar1_base()..xpu.bar1_base() + ccai_xpu::device::BAR1_SIZE;
        xpu_bar1.push(xpu.bar1_base());

        let port = PortId(i as u8);
        fabric.attach(port, Box::new(xpu));
        fabric.map_range(window, port);
        fabric.map_range(SC_REGIONS[i]..SC_REGIONS[i] + regs::WINDOW_LEN, port);

        memory.share_range(STAGING[i].0..STAGING[i].0 + STAGING[i].1);
        memory.share_range(TAG_LANDING[i]..TAG_LANDING[i] + 0x1_0000);
        memory.share_range(METADATA[i]..METADATA[i] + 0x1_0000);

        // Per-tenant master secret (in deployment: a per-tenant DH
        // exchange after per-tenant attestation).
        let master = [0x40 + i as u8; 32];
        let sc = PcieSc::new(
            ScConfig {
                sc_bdf,
                region_base: SC_REGIONS[i],
                tvm_bdf,
                xpu_bdf,
                mmio_integrity: true,
                metadata_batching: true,
            },
            master,
        );
        fabric.interpose(port, Box::new(sc));

        let adaptor = Adaptor::new(
            AdaptorConfig {
                tvm_bdf,
                xpu_bdf,
                sc_region_base: SC_REGIONS[i],
                xpu_bar0: bar0,
                xpu_bar1: bar1,
                staging_base: STAGING[i].0,
                staging_len: STAGING[i].1,
                tag_landing: TAG_LANDING[i],
                metadata_buf: METADATA[i],
                mmio_integrity: true,
                opts: OptimizationConfig::all_on(),
            },
            master,
        );
        tenants.push(Tenant { bdf: tvm_bdf, driver, adaptor, master });
    }

    TwoTenantRig { fabric, memory, tenants, xpu_bar1 }
}

fn run_tenant(rig: &mut TwoTenantRig, i: usize, weights: &[u8], input: &[u8]) -> Vec<u8> {
    let tenant = &rig.tenants[i];
    let adaptor = tenant.adaptor.clone();
    let master = tenant.master;
    let mut stager = adaptor.clone();
    let mut port = adaptor.port(&mut rig.fabric);
    adaptor.hw_init(&mut port);
    assert!(adaptor.install_default_policy(&mut port, &master), "tenant {i} policy");
    let driver = &tenant.driver;
    driver.init(&mut port).unwrap();
    driver
        .load_model(&mut port, &mut rig.memory, &mut stager, weights, 0x10_0000)
        .unwrap();
    driver
        .run_inference(&mut port, &mut rig.memory, &mut stager, input, 0x40_0000, 0x50_0000)
        .unwrap()
}

#[test]
fn two_tenants_compute_correctly_side_by_side() {
    let mut rig = build_rig();
    let (w_a, i_a) = (b"tenant-a-model".to_vec(), b"tenant-a-query".to_vec());
    let (w_b, i_b) = (b"tenant-b-model".to_vec(), b"tenant-b-query".to_vec());
    let r_a = run_tenant(&mut rig, 0, &w_a, &i_a);
    let r_b = run_tenant(&mut rig, 1, &w_b, &i_b);
    assert_eq!(r_a, CommandProcessor::surrogate_inference(&w_a, &i_a));
    assert_eq!(r_b, CommandProcessor::surrogate_inference(&w_b, &i_b));
    assert_ne!(r_a, r_b);
}

#[test]
fn snooper_learns_nothing_from_either_tenant() {
    let mut rig = build_rig();
    let adversary = BusAdversary::new();
    rig.fabric.add_tap(adversary.tap());
    let secret_a = b"TENANT-A-SECRET".repeat(300);
    let secret_b = b"TENANT-B-SECRET".repeat(300);
    run_tenant(&mut rig, 0, &secret_a, b"qa");
    run_tenant(&mut rig, 1, &secret_b, b"qb");
    assert!(adversary.log().len() > 100);
    assert!(!adversary.log().leaked(&secret_a[..15]));
    assert!(!adversary.log().leaked(&secret_b[..15]));
}

#[test]
fn cross_tenant_xpu_access_is_blocked() {
    let mut rig = build_rig();
    run_tenant(&mut rig, 0, b"model-a", b"query-a");
    run_tenant(&mut rig, 1, b"model-b", b"query-b");

    // Tenant A tries to read tenant B's device memory (model B lives at
    // 0x10_0000 behind B's BAR1 aperture). B's SC only authorizes B.
    let tenant_a = rig.tenants[0].bdf;
    let target = rig.xpu_bar1[1] + 0x10_0000;
    let replies = rig
        .fabric
        .host_request(Tlp::memory_read(tenant_a, target, 64, 0x41));
    assert!(
        replies.iter().all(|r| r.payload().is_empty()),
        "tenant A must not read tenant B's xPU memory"
    );

    // And the write direction.
    rig.fabric
        .host_request(Tlp::memory_write(tenant_a, target, vec![0xFF; 64]));
    // Tenant B's model still intact: rerun produces the correct result.
    let r_b = run_tenant(&mut rig, 1, b"model-b", b"query-b2");
    assert_eq!(r_b, CommandProcessor::surrogate_inference(b"model-b", b"query-b2"));
}

#[test]
fn cross_tenant_control_access_is_denied() {
    let mut rig = build_rig();
    run_tenant(&mut rig, 0, b"m", b"q");
    // Tenant A pokes tenant B's SC control window (e.g. to redirect B's
    // tag landing buffer into A-readable memory).
    let tenant_a = rig.tenants[0].bdf;
    rig.fabric.host_request(Tlp::memory_write(
        tenant_a,
        SC_REGIONS[1] + regs::TAG_LANDING_ADDR,
        TAG_LANDING[0].to_le_bytes().to_vec(),
    ));
    // B still works and B's SC recorded the denial.
    let r_b = run_tenant(&mut rig, 1, b"model-b", b"query-b");
    assert_eq!(r_b, CommandProcessor::surrogate_inference(b"model-b", b"query-b"));
}

#[test]
fn tenants_cannot_decrypt_each_others_streams() {
    // Key-domain isolation: even with full fabric access, tenant A's key
    // schedule (master A) cannot open data sealed under tenant B's
    // schedule. Checked at the crypto layer with the exact derivation the
    // adaptors use.
    use ccai_core::handler::{ChunkRef, CryptoEngine};
    use ccai_core::sc::epoch_master;
    use ccai_trust::keymgmt::StreamId;
    use ccai_trust::WorkloadKeyManager;

    let mut keys_a = WorkloadKeyManager::new(epoch_master(&[0x40; 32], 0));
    let mut keys_b = WorkloadKeyManager::new(epoch_master(&[0x41; 32], 0));
    keys_a.provision_stream(StreamId(0x100), 100);
    keys_b.provision_stream(StreamId(0x100), 100);

    let chunk = ChunkRef { stream: StreamId(0x100), seq: 0 };
    let mut engine = CryptoEngine::new();
    let (ct, tag) = engine.seal_detached(
        keys_b.stream_key(StreamId(0x100)).unwrap(),
        &chunk.nonce(),
        b"tenant B plaintext",
        &chunk.aad(),
    );
    let verdict = engine.open_detached(
        keys_a.stream_key(StreamId(0x100)).unwrap(),
        &chunk.nonce(),
        &ct,
        &tag,
        &chunk.aad(),
    );
    assert!(verdict.is_err(), "cross-tenant decryption must fail");
}
