//! Quickstart: run one confidential inference end to end.
//!
//! ```text
//! cargo run -p ccai-bench --example quickstart
//! ```
//!
//! Builds a vanilla platform and a ccAI-protected one around a simulated
//! NVIDIA A100, runs the same workload through the *same unmodified
//! driver*, and shows that (1) results are identical, (2) the protected
//! run really encrypted/decrypted the data path, and (3) a bus snooper
//! learns nothing from the protected run.

use ccai_core::system::{ConfidentialSystem, SystemMode};
use ccai_pcie::BusAdversary;
use ccai_xpu::{CommandProcessor, XpuSpec};

fn main() {
    let weights = b"proprietary model weights: the crown jewels".repeat(512);
    let prompt = b"user secret: how do I treat this diagnosis?".repeat(16);
    let expected = CommandProcessor::surrogate_inference(&weights, &prompt);

    // --- vanilla run (with a snooper on the bus) ---
    let mut vanilla = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::Vanilla);
    let snooper = BusAdversary::new();
    vanilla.fabric_mut().add_tap(snooper.tap());
    let result = vanilla.run_workload(&weights, &prompt).expect("vanilla run");
    assert_eq!(result, expected);
    println!("vanilla : result OK — but the snooper harvested {} packets", snooper.log().len());
    println!(
        "vanilla : prompt leaked on the bus? {}",
        snooper.log().leaked(&prompt[..43])
    );

    // --- ccAI run (same driver, same workload, snooper still listening) ---
    let mut ccai = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    let snooper2 = BusAdversary::new();
    ccai.fabric_mut().add_tap(snooper2.tap());
    let result = ccai.run_workload(&weights, &prompt).expect("ccAI run");
    assert_eq!(result, expected, "protection is transparent to results");

    let sc = ccai.sc_counters();
    let adaptor = ccai.adaptor_counters();
    println!("ccAI    : result OK (identical to vanilla)");
    println!(
        "ccAI    : prompt leaked on the bus? {}",
        snooper2.log().leaked(&prompt[..43])
    );
    println!(
        "ccAI    : adaptor encrypted {} bytes; SC decrypted {} chunks, encrypted {} back",
        adaptor.bytes_encrypted, sc.chunks_decrypted, sc.chunks_encrypted
    );
    println!("ccAI    : SC alerts: {}", ccai.sc().expect("sc present").alerts().len());

    ccai.end_task();
    println!("task ended: keys destroyed, xPU environment reset");
}
