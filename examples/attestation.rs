//! Trust establishment end to end (§6, Fig. 6).
//!
//! ```text
//! cargo run -p ccai-bench --example attestation
//! ```
//!
//! Walks the full chain: HRoT-Blade manufacture and EK certification by
//! the vendor CA, secure boot of the PCIe-SC bitstream + firmware from
//! encrypted flash, chassis-seal sensing, the four-step remote
//! attestation protocol, workload key derivation with IV-exhaustion
//! rotation — and shows that a tampered bitstream is caught both at boot
//! and by the remote verifier.

use ccai_crypto::{DhGroup, SchnorrKeyPair};
use ccai_trust::attest::{run_protocol, Platform, Verifier};
use ccai_trust::hrot::KeyCertificate;
use ccai_trust::keymgmt::StreamId;
use ccai_trust::pcr::PcrIndex;
use ccai_trust::sealing::{ChassisSensors, SensorReading};
use ccai_trust::secure_boot::{FlashImage, SecureBoot};
use ccai_trust::{HrotBlade, WorkloadKeyManager};
use ccai_crypto::Key;
use std::collections::HashMap;

fn main() {
    let group = DhGroup::sim512();

    // --- manufacture ---
    let vendor_ca = SchnorrKeyPair::generate(&group, &[0xCA; 32]);
    let mut blade = HrotBlade::manufacture(&group, &[0x01; 32]);
    blade.install_ek_certificate(KeyCertificate::issue(&vendor_ca, "EK", blade.ek_public()));
    println!("manufactured HRoT-Blade; EK certified by the vendor CA");

    // --- secure boot of the PCIe-SC ---
    let bitstream = b"packet-filter + packet-handler LUT configuration v1".to_vec();
    let firmware = b"sc management firmware v1".to_vec();
    let flash_key = Key::Aes128([0x5C; 16]);
    let boot = SecureBoot::for_pcie_sc(flash_key.clone(), &bitstream, &firmware);
    let flash = vec![
        FlashImage::provision("packet-filter-bitstream", &bitstream, &flash_key, [1; 12]),
        FlashImage::provision("sc-firmware", &firmware, &flash_key, [2; 12]),
    ];
    let loaded = boot.boot(&mut blade, &flash).expect("clean boot");
    println!("secure boot OK: {} components measured into PCRs", loaded.len());
    blade.boot_generate_ak(&[0x02; 32]);
    println!("boot-fresh AK generated and certified by the EK");

    // --- chassis seal ---
    let mut sensors = ChassisSensors::default();
    for _ in 0..10 {
        sensors.poll(&mut blade);
    }
    println!("chassis sensors nominal over 10 polls ({})", sensors);

    // --- remote attestation (the Fig. 6 protocol) ---
    let golden: HashMap<usize, _> = [
        (PcrIndex::ScBitstream.index(), blade.pcrs().read_assigned(PcrIndex::ScBitstream)),
        (PcrIndex::ScFirmware.index(), blade.pcrs().read_assigned(PcrIndex::ScFirmware)),
        (PcrIndex::ChassisSeal.index(), blade.pcrs().read_assigned(PcrIndex::ChassisSeal)),
    ]
    .into_iter()
    .collect();

    let mut platform = Platform::new(blade, &group, &[0x03; 32]);
    let mut verifier = Verifier::new(vendor_ca.public().clone(), &group, &[0x04; 32], golden.clone());
    run_protocol(&mut verifier, &mut platform, &[1, 2, 5], [0xAA; 32]).expect("attestation accepted");
    println!("remote attestation: ACCEPTED (EK chain, AK quote, golden PCRs, fresh nonce)");

    // --- workload keys (post-attestation) ---
    let master = [0x99u8; 32]; // in the system this comes from the DH session
    let mut tvm_keys = WorkloadKeyManager::new(master);
    let mut sc_keys = WorkloadKeyManager::new(master);
    for keys in [&mut tvm_keys, &mut sc_keys] {
        keys.provision_stream(StreamId(1), 4);
    }
    assert_eq!(tvm_keys.stream_key(StreamId(1)).unwrap(), sc_keys.stream_key(StreamId(1)).unwrap());
    // Exhaust the tiny IV budget to show the H100-style rotation.
    while tvm_keys.next_iv(StreamId(1)).is_ok() {
        sc_keys.next_iv(StreamId(1)).unwrap();
    }
    tvm_keys.rotate(StreamId(1)).unwrap();
    sc_keys.rotate(StreamId(1)).unwrap();
    assert_eq!(tvm_keys.stream_key(StreamId(1)).unwrap(), sc_keys.stream_key(StreamId(1)).unwrap());
    println!("workload keys: IV space exhausted -> both sides rotated to generation 1 in lockstep");

    // --- now the attacks ---
    println!();
    println!("--- attack: tampered bitstream in flash ---");
    let mut evil_blade = HrotBlade::manufacture(&group, &[0x01; 32]);
    evil_blade.install_ek_certificate(KeyCertificate::issue(&vendor_ca, "EK", evil_blade.ek_public()));
    let evil_flash = vec![
        FlashImage::provision("packet-filter-bitstream", b"backdoored bitstream", &flash_key, [1; 12]),
        FlashImage::provision("sc-firmware", &firmware, &flash_key, [2; 12]),
    ];
    let boot_result = boot.boot(&mut evil_blade, &evil_flash);
    println!("secure boot verdict: {boot_result:?}");
    assert!(boot_result.is_err());

    // Even if the platform booted anyway, attestation fails on the PCR.
    evil_blade.boot_generate_ak(&[0x05; 32]);
    let mut evil_platform = Platform::new(evil_blade, &group, &[0x06; 32]);
    let mut verifier2 = Verifier::new(vendor_ca.public().clone(), &group, &[0x07; 32], golden);
    let verdict = run_protocol(&mut verifier2, &mut evil_platform, &[1, 2, 5], [0xBB; 32]);
    println!("remote verifier verdict: {verdict:?}");
    assert!(verdict.is_err());

    println!();
    println!("--- attack: physical chassis breach ---");
    let mut blade2 = HrotBlade::manufacture(&group, &[0x08; 32]);
    let mut sensors2 = ChassisSensors::default();
    sensors2.inject_reading(SensorReading { lid_closed: false, ..SensorReading::nominal() });
    sensors2.poll(&mut blade2);
    println!(
        "chassis seal PCR after breach: {} (tamper events: {})",
        blade2.pcrs().read_assigned(PcrIndex::ChassisSeal),
        sensors2.tamper_events()
    );
    assert_eq!(sensors2.tamper_events(), 1);
}
