//! Multi-xPU compatibility: the same confidential stack across five
//! devices from three vendors (the paper's G1 claim).
//!
//! ```text
//! cargo run -p ccai-bench --example multi_xpu
//! ```
//!
//! Functionally drives every device model through the confidential path
//! (same Adaptor, same PCIe-SC, *vendor-specific* drivers and register
//! layouts), then reproduces the Fig. 10 overhead sweep with the
//! calibrated performance model.

use ccai_core::system::{ConfidentialSystem, SystemMode};
use ccai_llm::harness::{run, Mode};
use ccai_llm::{InferenceWorkload, LlmSpec};
use ccai_xpu::{CommandProcessor, XpuSpec};

fn main() {
    let weights = vec![0x42u8; 64 * 1024];
    let input = vec![0x17u8; 8 * 1024];
    let expected = CommandProcessor::surrogate_inference(&weights, &input);

    println!("--- functional compatibility sweep ---");
    for spec in XpuSpec::evaluation_set() {
        let label = spec.to_string();
        let mut system = ConfidentialSystem::build(spec, SystemMode::CcAi);
        let result = system
            .run_workload(&weights, &input)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        assert_eq!(result, expected, "{label}");
        let sc = system.sc_counters();
        println!(
            "{label}\n          -> confidential inference OK ({} chunks decrypted, {} encrypted, 0 driver changes)",
            sc.chunks_decrypted, sc.chunks_encrypted
        );
    }

    println!();
    println!("--- Fig. 10: per-device E2E overhead (512 tok, batch 1) ---");
    for device in XpuSpec::evaluation_set() {
        let model = if device.memory_bytes() < (20 << 30) {
            LlmSpec::opt_1_3b()
        } else {
            LlmSpec::llama2_7b()
        };
        let model_name = model.name().to_string();
        let w = InferenceWorkload::chat(model, 512, 1);
        let vanilla = run(&w, &device, Mode::Vanilla);
        let ccai = run(&w, &device, Mode::ccai());
        println!(
            "{:<20} {:<14} vanilla {:>7.2}s  ccAI {:>7.2}s  (+{:.2}%)",
            device.name(),
            model_name,
            vanilla.e2e.as_secs_f64(),
            ccai.e2e.as_secs_f64(),
            ccai.e2e_overhead_vs(&vanilla) * 100.0
        );
    }
}
