//! The §2.2 / §8.2 bus adversary, live.
//!
//! ```text
//! cargo run -p ccai-bench --example bus_attack
//! ```
//!
//! Runs the full attack battery against an unprotected platform (where
//! everything succeeds) and a ccAI platform (where everything is
//! blocked or detected): snooping, in-flight payload tampering, rogue
//! requester injection, and host attempts on TVM memory.

use ccai_core::system::{layout, ConfidentialSystem, SystemMode};
use ccai_pcie::{BusAdversary, TamperMode, Tlp, WireAttack};
use ccai_tvm::hypervisor::AttackOutcome;
use ccai_tvm::HostAdversary;
use ccai_xpu::XpuSpec;

/// Flips one payload bit in every downstream data TLP that looks like
/// DMA completion traffic (ciphertext heading to the device).
#[derive(Debug)]
struct CompletionTamper {
    hits: u32,
}

impl WireAttack for CompletionTamper {
    fn mangle(&mut self, tlp: Tlp, downstream: bool) -> Option<Tlp> {
        if downstream
            && tlp.header().tlp_type() == ccai_pcie::TlpType::CompletionData
            && tlp.payload().len() >= 64
        {
            self.hits += 1;
            return Some(TamperMode::BitFlip { byte: 13, bit: 5 }.apply(tlp));
        }
        Some(tlp)
    }
}

fn main() {
    let secret_weights = b"SECRET-WEIGHTS-".repeat(1024);
    let secret_prompt = b"SECRET-PROMPT--".repeat(64);

    println!("=== target 1: unprotected platform ===");
    let mut vanilla = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::Vanilla);
    let snooper = BusAdversary::new();
    vanilla.fabric_mut().add_tap(snooper.tap());
    vanilla.run_workload(&secret_weights, &secret_prompt).expect("vanilla run");
    println!(
        "snooping: weights leaked = {}, prompt leaked = {}",
        snooper.log().leaked(&secret_weights[..15]),
        snooper.log().leaked(&secret_prompt[..15]),
    );

    println!();
    println!("=== target 2: ccAI platform ===");
    let mut ccai = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    let snooper = BusAdversary::new();
    ccai.fabric_mut().add_tap(snooper.tap());
    ccai.run_workload(&secret_weights, &secret_prompt).expect("ccAI run");
    println!(
        "snooping: weights leaked = {}, prompt leaked = {} ({} packets captured)",
        snooper.log().leaked(&secret_weights[..15]),
        snooper.log().leaked(&secret_prompt[..15]),
        snooper.log().len(),
    );

    // --- in-flight tampering ---
    let mut ccai = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    ccai.fabric_mut().set_wire_attack(Box::new(CompletionTamper { hits: 0 }));
    let verdict = ccai.run_workload(&secret_weights, &secret_prompt);
    println!("tampering: workload verdict = {verdict:?}");
    let alerts = ccai.sc().expect("sc").alerts().len();
    println!("tampering: PCIe-SC raised {alerts} alert(s); plaintext never reached the device");
    assert!(verdict.is_err());
    assert!(alerts > 0);

    // --- rogue requester injection ---
    let mut ccai = ConfidentialSystem::build(XpuSpec::a100(), SystemMode::CcAi);
    ccai.run_workload(&secret_weights, &secret_prompt).expect("setup run");
    let rogue = ccai_pcie::Bdf::new(9, 9, 0);
    let forged_read =
        BusAdversary::craft_forged_read(rogue, layout::XPU_BAR_BASE + (1 << 28), 256);
    let replies = ccai.fabric_mut().host_request(forged_read);
    let leaked = replies.iter().any(|r| !r.payload().is_empty());
    println!("rogue device read of xPU memory: leaked = {leaked}");
    assert!(!leaked);
    let forged_write =
        BusAdversary::craft_forged_write(rogue, layout::XPU_BAR_BASE, vec![0xFF; 8]);
    ccai.fabric_mut().host_request(forged_write);
    let blocked = ccai.sc_counters().packets_blocked;
    println!("rogue packets blocked by the L1 table so far: {blocked}");
    assert!(blocked >= 2);

    // --- host adversary vs TVM memory ---
    let mut host = HostAdversary::new();
    let outcome = host.read_tvm_memory(ccai.memory(), 0x1000, 64);
    println!("host read of private TVM memory: {outcome:?}");
    assert_eq!(outcome, AttackOutcome::Blocked);
    // Shared bounce pages are readable — but hold only ciphertext.
    let bounce = host.read_tvm_memory(ccai.memory(), layout::STAGING_BASE, 15);
    match bounce {
        AttackOutcome::Leaked(bytes) => {
            println!(
                "host read of the bounce buffer: got {} bytes — ciphertext (≠ plaintext: {})",
                bytes.len(),
                bytes != secret_weights[..15]
            );
            assert_ne!(bytes, secret_weights[..15].to_vec());
        }
        other => println!("host read of the bounce buffer: {other:?}"),
    }

    println!();
    println!("all attacks against ccAI were blocked or detected.");
}
