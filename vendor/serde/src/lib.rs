//! Offline stand-in for `serde`.
//!
//! The build environment for this reproduction has no access to crates.io,
//! so the workspace vendors the minimal serde surface it actually uses:
//! the `Serialize`/`Deserialize` *names* importable from the crate root,
//! usable both as derive macros and as (empty) traits. No type in the
//! workspace is serialized through serde — the benchmark runners write
//! their JSON by hand — so the traits carry no methods and the derives
//! expand to nothing. Swapping the real serde back in is a one-line change
//! in the workspace `Cargo.toml`.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`. Blanket-implemented: every
/// type is nominally serializable so bounds written against the real
/// serde keep compiling.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
