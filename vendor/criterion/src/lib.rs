//! Offline stand-in for `criterion`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of the criterion API the ccAI benches use — `Criterion`,
//! `BenchmarkGroup`, `Bencher`, `Throughput`, `criterion_group!`,
//! `criterion_main!` — backed by a simple but honest wall-clock harness:
//! each benchmark is warmed up, then timed over enough iterations to fill
//! a fixed measurement window, and the median of several samples is
//! reported (ns/iter plus derived throughput when one was declared).
//!
//! It measures for real; it just skips criterion's outlier analysis,
//! HTML reports and statistical machinery. Swapping the real criterion
//! back in is a one-line change in the workspace `Cargo.toml`.
//!
//! Setting `CCAI_BENCH_SMOKE` in the environment switches `Bencher::iter`
//! to run each body exactly once — the test suite uses this to smoke-run
//! every benchmark under `cargo test` without the timing loops.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Declared per-iteration workload, used to derive throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration (reported in binary units).
    Bytes(u64),
    /// Bytes processed per iteration (reported in decimal units).
    BytesDecimal(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    /// Mean nanoseconds per iteration measured by the last `iter` call.
    ns_per_iter: f64,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean wall-clock time per call.
    ///
    /// Several timed samples are taken and the median kept, which is
    /// enough smoothing for the regression gates the repo cares about.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Smoke mode (CCAI_BENCH_SMOKE set): run the body exactly once so
        // the test suite can execute every bench without the timing loops.
        if std::env::var_os("CCAI_BENCH_SMOKE").is_some() {
            let start = Instant::now();
            std::hint::black_box(f());
            self.ns_per_iter = start.elapsed().as_nanos() as f64;
            return;
        }

        // Warm up and estimate the cost of one call.
        let warmup_end = Instant::now() + Duration::from_millis(30);
        let mut calls: u64 = 0;
        let warmup_start = Instant::now();
        while Instant::now() < warmup_end {
            std::hint::black_box(f());
            calls += 1;
        }
        let est_ns = (warmup_start.elapsed().as_nanos() as f64 / calls as f64).max(1.0);

        // Size batches to ~20ms and take 7 samples; keep the median.
        let batch = ((20_000_000.0 / est_ns) as u64).clamp(1, 1 << 24);
        let mut samples: Vec<f64> = (0..7)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..batch {
                    std::hint::black_box(f());
                }
                start.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

fn report(id: &str, ns: f64, throughput: Option<Throughput>) {
    let time = if ns >= 1_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else if ns >= 1_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else {
        format!("{ns:.1} ns")
    };
    match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let gib_s = bytes as f64 / ns * 1e9 / (1u64 << 30) as f64;
            println!("{id:<44} time: {time:>12}/iter   thrpt: {gib_s:9.3} GiB/s");
        }
        Some(Throughput::BytesDecimal(bytes)) => {
            let gb_s = bytes as f64 / ns * 1e9 / 1e9;
            println!("{id:<44} time: {time:>12}/iter   thrpt: {gb_s:9.3} GB/s");
        }
        Some(Throughput::Elements(n)) => {
            let elem_s = n as f64 / ns * 1e9;
            println!("{id:<44} time: {time:>12}/iter   thrpt: {elem_s:9.0} elem/s");
        }
        None => println!("{id:<44} time: {time:>12}/iter"),
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(id, b.ns_per_iter, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.to_string(), throughput: None }
    }
}

/// Grouped benchmarks sharing a name prefix and optional throughput.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the harness sizes samples itself.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the harness sizes windows itself.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(&format!("{}/{id}", self.name), b.ns_per_iter, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Re-export so `criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring criterion's macro.
///
/// The generated `main` is dead code when a bench file is also compiled
/// into the smoke-test harness (which calls the group functions
/// directly), hence the `allow`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        #[allow(dead_code)]
        fn main() {
            $( $group(); )+
        }
    };
}
