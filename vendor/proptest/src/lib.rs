//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate implements
//! the slice of the proptest API the ccAI test suite uses: the `proptest!`
//! macro, `Strategy` (ranges, tuples, `any`, `prop_map`, `prop_flat_map`,
//! `prop_shuffle`, `boxed`), `Just`, `Union` / `prop_oneof!`,
//! `collection::vec`, `prop::sample::Index`,
//! `prop::sample::subsequence`, `ProptestConfig`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Inputs are generated from a deterministic per-test xorshift stream, so
//! failures reproduce bit-for-bit across runs and machines. Shrinking and
//! persistence are intentionally omitted: a failing case panics with the
//! ordinary assert message. Swapping the real proptest back in is a
//! one-line change in the workspace `Cargo.toml`.

#![forbid(unsafe_code)]

/// Per-run configuration (case count only).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Builds a config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod test_runner {
    //! Deterministic random stream driving input generation.

    /// xorshift64* generator seeded from the test's name.
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds the stream from `name` (FNV-1a), so every property gets
        /// an independent but reproducible input sequence.
        pub fn for_test(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(h | 1)
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Fills `out` with uniform bytes.
        pub fn fill_bytes(&mut self, out: &mut [u8]) {
            for chunk in out.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

use test_runner::TestRng;

/// A generator of test inputs.
pub trait Strategy {
    /// The generated input type.
    type Value;

    /// Draws one value from the deterministic stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value: `f` turns
    /// the draw into a second strategy which is then drawn from. This is
    /// how "a buffer plus valid indices into it" shapes are generated.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Uniformly permutes generated `Vec`s (a Fisher–Yates pass over the
    /// same deterministic stream). Mirrors `proptest`'s `prop_shuffle`.
    fn prop_shuffle<T>(self) -> Shuffle<Self>
    where
        Self: Strategy<Value = Vec<T>> + Sized,
    {
        Shuffle { inner: self }
    }

    /// Erases the concrete strategy type, so strategies of different
    /// shapes (but the same `Value`) can share a signature or be mixed
    /// by [`Union`] / [`prop_oneof!`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Strategy adapter produced by [`Strategy::prop_shuffle`].
pub struct Shuffle<S> {
    inner: S,
}

impl<T, S: Strategy<Value = Vec<T>>> Strategy for Shuffle<S> {
    type Value = Vec<T>;
    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let mut values = self.inner.generate(rng);
        for i in (1..values.len()).rev() {
            let j = rng.next_u64() as usize % (i + 1);
            values.swap(i, j);
        }
        values
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy adapter produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between several strategies of the same value type
/// (usually [`BoxedStrategy`]s built by [`prop_oneof!`]).
pub struct Union<S> {
    options: Vec<S>,
}

impl<S: Strategy> Union<S> {
    /// Builds a union over `options`. Panics if `options` is empty.
    pub fn new(options: impl IntoIterator<Item = S>) -> Union<S> {
        let options: Vec<S> = options.into_iter().collect();
        assert!(!options.is_empty(), "Union of zero strategies");
        Union { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let pick = rng.next_u64() as usize % self.options.len();
        self.options[pick].generate(rng)
    }
}

/// Draws from one of several strategies, chosen uniformly per case. The
/// arms may have different concrete types as long as they generate the
/// same `Value`; each arm is boxed.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for the full value space of `T` (see [`any`]).
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                (self.start as u128 + (rng.next_u64() as u128) % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as u128, *self.end() as u128);
                assert!(lo <= hi, "empty range strategy");
                (lo + (rng.next_u64() as u128) % (hi - lo + 1)) as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

macro_rules! strategy_tuple {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

strategy_tuple! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1);
            let len = self.size.start + rng.next_u64() as usize % span;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prop {
    //! Namespace mirror of `proptest::prop`.

    pub mod sample {
        //! Sampling helpers.

        /// An index into a collection whose length is only known at use
        /// time; `any::<Index>()` draws the raw entropy, [`Index::index`]
        /// maps it into `0..len`.
        #[derive(Debug, Clone, Copy)]
        pub struct Index(usize);

        impl Index {
            /// Projects the raw draw into `0..len`. Panics if `len == 0`.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                self.0 % len
            }
        }

        impl super::super::Arbitrary for Index {
            fn arbitrary(rng: &mut super::super::test_runner::TestRng) -> Index {
                Index(rng.next_u64() as usize)
            }
        }

        /// Strategy for order-preserving subsequences of a fixed vector
        /// (see [`subsequence`]).
        pub struct Subsequence<T: Clone> {
            values: Vec<T>,
            size: std::ops::Range<usize>,
        }

        /// Generates subsequences of `values` — distinct elements, in
        /// their original relative order — with a length drawn uniformly
        /// from `size`. Mirrors `proptest::sample::subsequence`.
        ///
        /// # Panics
        ///
        /// Panics if `size` is empty or allows lengths longer than
        /// `values`.
        pub fn subsequence<T: Clone>(
            values: Vec<T>,
            size: std::ops::Range<usize>,
        ) -> Subsequence<T> {
            assert!(size.start < size.end, "empty size range");
            assert!(
                size.end <= values.len() + 1,
                "subsequence length can exceed the source vector"
            );
            Subsequence { values, size }
        }

        impl<T: Clone> super::super::Strategy for Subsequence<T> {
            type Value = Vec<T>;
            fn generate(&self, rng: &mut super::super::test_runner::TestRng) -> Vec<T> {
                let span = self.size.end - self.size.start;
                let len = self.size.start + rng.next_u64() as usize % span;
                // Draw a uniform combination: shuffle the index set, take
                // the prefix, then restore source order.
                let mut indices: Vec<usize> = (0..self.values.len()).collect();
                for i in (1..indices.len()).rev() {
                    let j = rng.next_u64() as usize % (i + 1);
                    indices.swap(i, j);
                }
                indices.truncate(len);
                indices.sort_unstable();
                indices.into_iter().map(|i| self.values[i].clone()).collect()
            }
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof,
        proptest, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, Union,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);
     $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for _case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let case = || { $body };
                    case();
                }
            }
        )*
    };
}

/// Assertion macro; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion macro; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion macro; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current generated case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}
