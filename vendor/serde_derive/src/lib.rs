//! Offline stand-in for `serde_derive`.
//!
//! The ccAI reproduction annotates its public data types with
//! `#[derive(Serialize, Deserialize)]` so the real serde can be dropped in
//! when the build environment has network access, but nothing in the
//! workspace actually serializes through serde (the benchmark runners emit
//! their JSON by hand). These derives therefore only need to *accept* the
//! syntax — including `#[serde(...)]` helper attributes — and emit no code.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
